//! The placement planner: strategy × model × platform → concrete placement.

use crate::partition::{bin_loads, greedy_balance, greedy_pack, load_imbalance, refine_balance};
use crate::strategy::{PartitionScheme, PlacementStrategy};
use recsim_data::schema::ModelConfig;
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_verify::{Code, Diagnostic, Validate};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Fraction of GPU HBM reserved for activations, workspace and buffers;
/// only the rest holds embedding tables.
pub const GPU_RESERVED_FRACTION: f64 = 0.15;

/// Multiplier on table bytes for optimizer state (Adagrad keeps one
/// accumulator per weight, doubling the footprint).
pub const ADAGRAD_STATE_MULTIPLIER: f64 = 2.0;

/// Where one embedding table lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TableLocation {
    /// A full copy on every GPU (chosen when all tables fit one GPU's HBM):
    /// gathers are purely local and no inter-GPU exchange is needed.
    Replicated,
    /// Whole table on one GPU's HBM.
    Gpu(usize),
    /// Rows sharded evenly across the first `num_gpus` GPUs.
    RowWiseSharded {
        /// How many GPUs share the table.
        num_gpus: usize,
    },
    /// The GPU server's own system memory.
    HostMemory,
    /// A remote CPU parameter server.
    Remote(usize),
}

/// One table's placement decision plus the sizes the simulator needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableAssignment {
    /// Distinct-table index in the model config (equals the sparse-feature
    /// index unless features share tables).
    pub table: usize,
    /// Table bytes including optimizer state.
    pub bytes: u64,
    /// Bytes gathered from this table per example (lookups × row bytes).
    pub gather_bytes_per_example: u64,
    /// Bytes of this table's pooled output per example (one row).
    pub pooled_bytes_per_example: u64,
    /// Where the table lives.
    pub location: TableLocation,
}

/// A complete placement of a model's embedding tables on a platform.
///
/// # Example
///
/// ```
/// use recsim_placement::{Placement, PlacementStrategy, PartitionScheme};
/// use recsim_data::schema::ModelConfig;
/// use recsim_hw::{Platform, units::Bytes};
///
/// let config = ModelConfig::test_suite(64, 8, 100_000, &[512; 3]);
/// let platform = Platform::big_basin(Bytes::from_gib(32));
/// let placement = Placement::plan(
///     &config, &platform,
///     PlacementStrategy::GpuMemory(PartitionScheme::TableWise), 2.0,
/// )?;
/// assert!(placement.fraction_on_gpu() > 0.99);
/// # Ok::<(), recsim_placement::PlacementError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    strategy: PlacementStrategy,
    assignments: Vec<TableAssignment>,
    num_gpus: usize,
    /// Table capacity of one GPU on the planned platform; 0 = unknown
    /// (capacity checks are skipped for that location class).
    #[serde(default)]
    gpu_capacity: u64,
    /// Table capacity of the host's system memory; 0 = unknown.
    #[serde(default)]
    host_capacity: u64,
    /// Table capacity of one remote parameter server; 0 = unknown.
    #[serde(default)]
    remote_capacity: u64,
}

/// Why a placement could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// The strategy needs accelerators but the platform has none.
    NoGpus,
    /// A memory did not have room for the tables routed to it.
    Capacity {
        /// Which memory overflowed ("GPU 3", "host", "remote PS").
        location: String,
        /// Bytes that needed to fit.
        needed: Bytes,
        /// Bytes available.
        available: Bytes,
    },
    /// A packing primitive found an item that fits in no bin — the
    /// structured form of what [`crate::partition::greedy_pack`] reports,
    /// so callers no longer map a bare index by hand.
    Unplaceable {
        /// Index of the first item (table) that fits in no bin.
        item: usize,
        /// The item's weight.
        needed: Bytes,
        /// Capacity of each bin it was tried against.
        available: Bytes,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NoGpus => write!(f, "placement strategy requires GPUs"),
            PlacementError::Capacity {
                location,
                needed,
                available,
            } => write!(
                f,
                "embedding tables need {needed} but {location} has {available}"
            ),
            PlacementError::Unplaceable {
                item,
                needed,
                available,
            } => write!(
                f,
                "table {item} needs {needed} but no bin has room within {available}"
            ),
        }
    }
}

impl Error for PlacementError {}

impl Placement {
    /// Plans a placement.
    ///
    /// `state_multiplier` scales table bytes for optimizer state (use
    /// [`ADAGRAD_STATE_MULTIPLIER`] for Adagrad, `1.0` for plain SGD).
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError::NoGpus`] when a GPU strategy is requested
    /// on a CPU-only platform, and [`PlacementError::Capacity`] when tables
    /// do not fit where the strategy routes them.
    ///
    /// # Panics
    ///
    /// Panics if `state_multiplier < 1.0`.
    pub fn plan(
        config: &ModelConfig,
        platform: &Platform,
        strategy: PlacementStrategy,
        state_multiplier: f64,
    ) -> Result<Placement, PlacementError> {
        assert!(state_multiplier >= 1.0, "state multiplier must be >= 1");
        let sized = table_demands(config, state_multiplier);
        let total_bytes: u64 = sized.iter().map(|s| s.bytes).sum();

        // Capacities are recorded on the plan so `Validate` can re-check it
        // later (after deserialization, hand edits, or noise injection).
        let gpu_capacity = gpu_table_capacity(platform);
        let host_capacity = platform.host().memory().capacity().as_u64();
        let remote_capacity = recsim_hw::memory::ddr4_dual_socket().capacity().as_u64();
        let finish = |strategy, assignments, num_gpus| Placement {
            strategy,
            assignments,
            num_gpus,
            gpu_capacity,
            host_capacity,
            remote_capacity,
        };

        let build = |locations: Vec<TableLocation>| -> Vec<TableAssignment> {
            sized
                .iter()
                .zip(locations)
                .map(|(d, location)| TableAssignment {
                    table: d.table,
                    bytes: d.bytes,
                    gather_bytes_per_example: d.gather_bytes_per_example,
                    pooled_bytes_per_example: d.pooled_bytes_per_example,
                    location,
                })
                .collect()
        };

        match strategy {
            PlacementStrategy::GpuMemory(scheme) => {
                if !platform.has_gpus() {
                    return Err(PlacementError::NoGpus);
                }
                let gpus = platform.gpus().len();
                let per_gpu = gpu_table_capacity(platform);
                match scheme {
                    PartitionScheme::Replicated => {
                        if total_bytes > per_gpu {
                            return Err(PlacementError::Capacity {
                                location: "GPU memory (replicated)".into(),
                                needed: Bytes::new(total_bytes),
                                available: Bytes::new(per_gpu),
                            });
                        }
                        Ok(finish(
                            strategy,
                            build(vec![TableLocation::Replicated; sized.len()]),
                            gpus,
                        ))
                    }
                    PartitionScheme::TableWise => {
                        let weights: Vec<u64> = sized.iter().map(|s| s.bytes).collect();
                        let mut assignment = greedy_pack(&weights, gpus, per_gpu)?;
                        // Local search tightens the LPT result; it only
                        // ever lowers the maximum load, so capacity is
                        // preserved.
                        refine_balance(&weights, &mut assignment, gpus, 16);
                        Ok(finish(
                            strategy,
                            build(assignment.into_iter().map(TableLocation::Gpu).collect()),
                            gpus,
                        ))
                    }
                    PartitionScheme::RowWise => {
                        let per_gpu_load = total_bytes / gpus as u64;
                        if per_gpu_load > per_gpu {
                            return Err(PlacementError::Capacity {
                                location: "GPU memory (row-wise)".into(),
                                needed: Bytes::new(per_gpu_load),
                                available: Bytes::new(per_gpu),
                            });
                        }
                        Ok(finish(
                            strategy,
                            build(
                                (0..sized.len())
                                    .map(|_| TableLocation::RowWiseSharded { num_gpus: gpus })
                                    .collect(),
                            ),
                            gpus,
                        ))
                    }
                }
            }
            PlacementStrategy::SystemMemory => {
                let capacity = platform.host().memory().capacity().as_u64();
                if total_bytes > capacity {
                    return Err(PlacementError::Capacity {
                        location: "host system memory".into(),
                        needed: Bytes::new(total_bytes),
                        available: Bytes::new(capacity),
                    });
                }
                Ok(finish(
                    strategy,
                    build(vec![TableLocation::HostMemory; sized.len()]),
                    platform.gpus().len(),
                ))
            }
            PlacementStrategy::RemoteCpu { servers } => {
                let servers = servers.max(1) as usize;
                // Remote sparse parameter servers are dual-socket CPU boxes.
                let per_server = recsim_hw::memory::ddr4_dual_socket().capacity().as_u64();
                // Balance by gather traffic (the imbalance the paper warns
                // about), then verify capacity per server.
                let traffic: Vec<u64> = sized
                    .iter()
                    .map(|s| s.gather_bytes_per_example.max(1))
                    .collect();
                let mut assignment = greedy_balance(&traffic, servers);
                refine_balance(&traffic, &mut assignment, servers, 16);
                let byte_weights: Vec<u64> = sized.iter().map(|s| s.bytes).collect();
                let loads = bin_loads(&byte_weights, &assignment, servers);
                if let Some((server, &load)) =
                    loads.iter().enumerate().find(|&(_, &l)| l > per_server)
                {
                    return Err(PlacementError::Capacity {
                        location: format!("remote PS {server}"),
                        needed: Bytes::new(load),
                        available: Bytes::new(per_server),
                    });
                }
                Ok(finish(
                    strategy,
                    build(assignment.into_iter().map(TableLocation::Remote).collect()),
                    platform.gpus().len(),
                ))
            }
            PlacementStrategy::Hybrid => {
                if !platform.has_gpus() {
                    return Err(PlacementError::NoGpus);
                }
                let gpus = platform.gpus().len();
                let per_gpu = gpu_table_capacity(platform);
                // Hottest-first (gather traffic per byte) fill of the GPUs;
                // the remainder spills to host memory.
                let mut order: Vec<usize> = (0..sized.len()).collect();
                order.sort_by(|&a, &b| {
                    let da =
                        sized[a].gather_bytes_per_example as f64 / sized[a].bytes.max(1) as f64;
                    let db =
                        sized[b].gather_bytes_per_example as f64 / sized[b].bytes.max(1) as f64;
                    db.total_cmp(&da).then(a.cmp(&b))
                });
                let mut gpu_loads = vec![0u64; gpus];
                let mut locations = vec![TableLocation::HostMemory; sized.len()];
                let mut host_bytes = 0u64;
                for idx in order {
                    let bytes = sized[idx].bytes;
                    let best = gpu_loads
                        .iter()
                        .enumerate()
                        .filter(|&(_, &l)| l + bytes <= per_gpu)
                        .min_by_key(|&(i, &l)| (l, i))
                        .map(|(i, _)| i);
                    match best {
                        Some(g) => {
                            gpu_loads[g] += bytes;
                            locations[idx] = TableLocation::Gpu(g);
                        }
                        None => {
                            host_bytes += bytes;
                        }
                    }
                }
                let host_capacity = platform.host().memory().capacity().as_u64();
                if host_bytes > host_capacity {
                    return Err(PlacementError::Capacity {
                        location: "host system memory (hybrid spill)".into(),
                        needed: Bytes::new(host_bytes),
                        available: Bytes::new(host_capacity),
                    });
                }
                Ok(finish(strategy, build(locations), gpus))
            }
        }
    }

    /// Assembles a placement directly from its parts, bypassing the
    /// planner. No invariants are enforced here — that is the point: this
    /// is the entry for tests, config loaders and external tools, and
    /// [`Validate`] is how the result gets checked. Capacities of `0`
    /// disable the capacity check for that location class.
    pub fn from_parts(
        strategy: PlacementStrategy,
        assignments: Vec<TableAssignment>,
        num_gpus: usize,
        gpu_capacity: u64,
        host_capacity: u64,
        remote_capacity: u64,
    ) -> Placement {
        Placement {
            strategy,
            assignments,
            num_gpus,
            gpu_capacity,
            host_capacity,
            remote_capacity,
        }
    }

    /// The strategy that produced this placement.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// Per-table assignments, in feature order.
    pub fn assignments(&self) -> &[TableAssignment] {
        &self.assignments
    }

    /// Number of GPUs on the planned platform.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// Total table bytes (including optimizer state).
    pub fn total_bytes(&self) -> u64 {
        self.assignments.iter().map(|a| a.bytes).sum()
    }

    /// Table bytes per GPU (row-wise shards contribute evenly).
    pub fn gpu_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.num_gpus];
        for a in &self.assignments {
            match a.location {
                TableLocation::Replicated => {
                    for l in &mut loads {
                        *l += a.bytes;
                    }
                }
                TableLocation::Gpu(g) => loads[g] += a.bytes,
                TableLocation::RowWiseSharded { num_gpus } => {
                    let share = a.bytes / num_gpus as u64;
                    for l in loads.iter_mut().take(num_gpus) {
                        *l += share;
                    }
                }
                _ => {}
            }
        }
        loads
    }

    /// Table bytes in host memory.
    pub fn host_bytes(&self) -> u64 {
        self.assignments
            .iter()
            .filter(|a| a.location == TableLocation::HostMemory)
            .map(|a| a.bytes)
            .sum()
    }

    /// Table bytes per remote parameter server.
    pub fn remote_loads(&self) -> Vec<u64> {
        let servers = self
            .assignments
            .iter()
            .filter_map(|a| match a.location {
                TableLocation::Remote(s) => Some(s + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let mut loads = vec![0u64; servers];
        for a in &self.assignments {
            if let TableLocation::Remote(s) = a.location {
                loads[s] += a.bytes;
            }
        }
        loads
    }

    /// Fraction of gather traffic served from GPU HBM.
    pub fn fraction_on_gpu(&self) -> f64 {
        let total: u64 = self
            .assignments
            .iter()
            .map(|a| a.gather_bytes_per_example)
            .sum();
        if total == 0 {
            return 0.0;
        }
        let on_gpu: u64 = self
            .assignments
            .iter()
            .filter(|a| {
                matches!(
                    a.location,
                    TableLocation::Replicated
                        | TableLocation::Gpu(_)
                        | TableLocation::RowWiseSharded { .. }
                )
            })
            .map(|a| a.gather_bytes_per_example)
            .sum();
        on_gpu as f64 / total as f64
    }

    /// Gather bytes per example served from each location class:
    /// `(gpu, host, remote)`.
    pub fn gather_split(&self) -> (u64, u64, u64) {
        let mut gpu = 0u64;
        let mut host = 0u64;
        let mut remote = 0u64;
        for a in &self.assignments {
            match a.location {
                TableLocation::Replicated
                | TableLocation::Gpu(_)
                | TableLocation::RowWiseSharded { .. } => gpu += a.gather_bytes_per_example,
                TableLocation::HostMemory => host += a.gather_bytes_per_example,
                TableLocation::Remote(_) => remote += a.gather_bytes_per_example,
            }
        }
        (gpu, host, remote)
    }

    /// Pooled-output bytes per example served from each location class:
    /// `(gpu, host, remote)` — what must cross links to reach the trainer.
    pub fn pooled_split(&self) -> (u64, u64, u64) {
        let mut gpu = 0u64;
        let mut host = 0u64;
        let mut remote = 0u64;
        for a in &self.assignments {
            match a.location {
                TableLocation::Replicated
                | TableLocation::Gpu(_)
                | TableLocation::RowWiseSharded { .. } => gpu += a.pooled_bytes_per_example,
                TableLocation::HostMemory => host += a.pooled_bytes_per_example,
                TableLocation::Remote(_) => remote += a.pooled_bytes_per_example,
            }
        }
        (gpu, host, remote)
    }

    /// GPU load imbalance (`max/mean`), `1.0` when nothing is on GPUs.
    pub fn gpu_imbalance(&self) -> f64 {
        load_imbalance(&self.gpu_loads())
    }

    /// Number of GPUs that actually hold table bytes.
    pub fn gpus_used(&self) -> usize {
        self.gpu_loads().iter().filter(|&&l| l > 0).count()
    }

    /// A human-readable table of where every table lives and how much it
    /// weighs — the textual version of the paper's Figure 8.
    pub fn describe(&self) -> String {
        let mut out = format!("placement: {}\n", self.strategy);
        for a in &self.assignments {
            let loc = match a.location {
                TableLocation::Replicated => "replicated on every GPU".to_string(),
                TableLocation::Gpu(g) => format!("GPU {g}"),
                TableLocation::RowWiseSharded { num_gpus } => {
                    format!("row-wise across {num_gpus} GPUs")
                }
                TableLocation::HostMemory => "host system memory".to_string(),
                TableLocation::Remote(s) => format!("remote PS {s}"),
            };
            out.push_str(&format!(
                "  table {:>3}: {:>10}  ({} gathered/example) -> {loc}\n",
                a.table,
                Bytes::new(a.bytes).to_string(),
                Bytes::new(a.gather_bytes_per_example),
            ));
        }
        let loads = self.gpu_loads();
        if loads.iter().any(|&l| l > 0) {
            out.push_str(&format!(
                "  GPU loads: [{}], imbalance {:.2}\n",
                loads
                    .iter()
                    .map(|&l| Bytes::new(l).to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                self.gpu_imbalance()
            ));
        }
        if self.host_bytes() > 0 {
            out.push_str(&format!(
                "  host memory: {}\n",
                Bytes::new(self.host_bytes())
            ));
        }
        let remote = self.remote_loads();
        if !remote.is_empty() {
            out.push_str(&format!(
                "  remote PS loads: [{}]\n",
                remote
                    .iter()
                    .map(|&l| Bytes::new(l).to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out
    }
}

/// RV021/RV022/RV023: a placement must reference only devices that exist,
/// must not overfill any memory whose capacity it knows, and must have a
/// sane shape (one assignment per table, non-degenerate sharding).
impl Validate for Placement {
    fn validate(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        if self.assignments.is_empty() {
            diags.push(Diagnostic::warning(
                Code::InvalidPlacement,
                "Placement.assignments",
                "placement assigns no tables",
            ));
        }
        // RV022 first: dangling device references make the load accounting
        // below meaningless, so gather them and skip the offenders.
        let mut gpu_loads = vec![0u64; self.num_gpus];
        let mut host_load = 0u64;
        let mut remote_loads: Vec<u64> = Vec::new();
        let mut seen_tables = std::collections::BTreeMap::new();
        for (i, a) in self.assignments.iter().enumerate() {
            let at = format!("Placement.assignments[{i}]");
            if let Some(&prev) = seen_tables.get(&a.table) {
                diags.push(Diagnostic::error(
                    Code::InvalidPlacement,
                    at.clone(),
                    format!(
                        "table {} is assigned twice (also at assignments[{prev}])",
                        a.table
                    ),
                ));
            } else {
                seen_tables.insert(a.table, i);
            }
            match a.location {
                TableLocation::Replicated => {
                    if self.num_gpus == 0 {
                        diags.push(Diagnostic::error(
                            Code::DanglingResource,
                            at,
                            "table replicated across GPUs on a plan with zero GPUs",
                        ));
                    } else {
                        for l in &mut gpu_loads {
                            *l += a.bytes;
                        }
                    }
                }
                TableLocation::Gpu(g) => {
                    if g >= self.num_gpus {
                        diags.push(Diagnostic::error(
                            Code::DanglingResource,
                            at,
                            format!(
                                "table on GPU {g} but the plan has only {} GPU(s)",
                                self.num_gpus
                            ),
                        ));
                    } else {
                        gpu_loads[g] += a.bytes;
                    }
                }
                TableLocation::RowWiseSharded { num_gpus } => {
                    if num_gpus == 0 || num_gpus > self.num_gpus {
                        diags.push(Diagnostic::error(
                            Code::DanglingResource,
                            at,
                            format!(
                                "table sharded across {num_gpus} GPU(s) on a plan with {}",
                                self.num_gpus
                            ),
                        ));
                    } else {
                        let share = a.bytes / num_gpus as u64;
                        for l in gpu_loads.iter_mut().take(num_gpus) {
                            *l += share;
                        }
                    }
                }
                TableLocation::HostMemory => host_load += a.bytes,
                TableLocation::Remote(s) => {
                    if remote_loads.len() <= s {
                        remote_loads.resize(s + 1, 0);
                    }
                    remote_loads[s] += a.bytes;
                }
            }
        }
        // RV021: capacity, where the plan knows it (0 = unknown, skipped).
        if self.gpu_capacity > 0 {
            for (g, &load) in gpu_loads.iter().enumerate() {
                if load > self.gpu_capacity {
                    diags.push(Diagnostic::error(
                        Code::PlacementOverCapacity,
                        format!("Placement GPU {g}"),
                        format!(
                            "{} of tables routed to a GPU with {} of table capacity",
                            Bytes::new(load),
                            Bytes::new(self.gpu_capacity)
                        ),
                    ));
                }
            }
        }
        if self.host_capacity > 0 && host_load > self.host_capacity {
            diags.push(Diagnostic::error(
                Code::PlacementOverCapacity,
                "Placement host memory",
                format!(
                    "{} of tables routed to a host with {}",
                    Bytes::new(host_load),
                    Bytes::new(self.host_capacity)
                ),
            ));
        }
        if self.remote_capacity > 0 {
            for (s, &load) in remote_loads.iter().enumerate() {
                if load > self.remote_capacity {
                    diags.push(Diagnostic::error(
                        Code::PlacementOverCapacity,
                        format!("Placement remote PS {s}"),
                        format!(
                            "{} of tables routed to a parameter server with {}",
                            Bytes::new(load),
                            Bytes::new(self.remote_capacity)
                        ),
                    ));
                }
            }
        }
        diags
    }
}

/// One distinct table's memory footprint and per-example traffic — the
/// sizing [`Placement::plan`] works from, exposed so external planners
/// (e.g. `recsim-shard`) derive demands identically instead of duplicating
/// the formula.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableDemand {
    /// Distinct-table index in the model config.
    pub table: usize,
    /// Table bytes including optimizer state.
    pub bytes: u64,
    /// Bytes gathered from this table per example (lookups × row bytes),
    /// summed over every feature the table backs.
    pub gather_bytes_per_example: u64,
    /// Bytes of this table's pooled output per example (one row per
    /// backing feature).
    pub pooled_bytes_per_example: u64,
}

impl TableDemand {
    /// Converts a demand into an assignment at `location`.
    pub fn assigned(&self, location: TableLocation) -> TableAssignment {
        TableAssignment {
            table: self.table,
            bytes: self.bytes,
            gather_bytes_per_example: self.gather_bytes_per_example,
            pooled_bytes_per_example: self.pooled_bytes_per_example,
            location,
        }
    }
}

/// Per-distinct-table demands for a model: shared tables occupy memory
/// once but aggregate the gather traffic (and pooled outputs) of every
/// feature they back. `state_multiplier` scales table bytes for optimizer
/// state, exactly as in [`Placement::plan`].
///
/// # Panics
///
/// Panics if `state_multiplier < 1.0`.
pub fn table_demands(config: &ModelConfig, state_multiplier: f64) -> Vec<TableDemand> {
    assert!(state_multiplier >= 1.0, "state multiplier must be >= 1");
    (0..config.num_tables())
        .map(|t| {
            let bytes = (config.table_hash_size(t) as f64
                * config.row_bytes() as f64
                * state_multiplier) as u64;
            let features = config.table_features(t);
            let gather = features
                .iter()
                .map(|&f| {
                    (config.sparse_features()[f].effective_lookups(config.truncation())
                        * config.row_bytes() as f64) as u64
                })
                .sum();
            let pooled = features.len() as u64 * config.row_bytes();
            TableDemand {
                table: t,
                bytes,
                gather_bytes_per_example: gather,
                pooled_bytes_per_example: pooled,
            }
        })
        .collect()
}

/// HBM bytes per GPU available for tables after the workspace reservation.
pub fn gpu_table_capacity(platform: &Platform) -> u64 {
    platform.gpus().first().map_or(0, |g| {
        (g.memory().capacity().as_u64() as f64 * (1.0 - GPU_RESERVED_FRACTION)) as u64
    })
}

/// The minimum number of GPUs whose pooled HBM can hold the model's tables
/// (how the paper's Figure 12 explains hash-size scaling: "as the hash size
/// increase more GPUs within the single server need to be used").
///
/// Returns `None` when even all GPUs together cannot hold the tables.
pub fn min_gpus_needed(
    config: &ModelConfig,
    platform: &Platform,
    state_multiplier: f64,
) -> Option<usize> {
    let per_gpu = gpu_table_capacity(platform);
    if per_gpu == 0 {
        return None;
    }
    let total = (config.total_embedding_bytes() as f64 * state_multiplier) as u64;
    let needed = total.div_ceil(per_gpu).max(1) as usize;
    if needed <= platform.gpus().len() {
        Some(needed)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsim_data::production::{production_model, ProductionModelId};

    fn test_config(hash: u64) -> ModelConfig {
        ModelConfig::test_suite(64, 8, hash, &[512, 512, 512])
    }

    fn big_basin() -> Platform {
        Platform::big_basin(Bytes::from_gib(32))
    }

    #[test]
    fn small_model_fits_on_gpu_table_wise() {
        let p = Placement::plan(
            &test_config(100_000),
            &big_basin(),
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            ADAGRAD_STATE_MULTIPLIER,
        )
        .expect("fits");
        assert_eq!(p.fraction_on_gpu(), 1.0);
        assert_eq!(p.host_bytes(), 0);
        let per_gpu = gpu_table_capacity(&big_basin());
        assert!(p.gpu_loads().iter().all(|&l| l <= per_gpu));
    }

    #[test]
    fn m3_does_not_fit_on_big_basin_gpus() {
        // The paper's central M3 finding: hundreds of GB exceed 8x32 GB HBM.
        let m3 = production_model(ProductionModelId::M3);
        let err = Placement::plan(
            &m3,
            &big_basin(),
            PlacementStrategy::GpuMemory(PartitionScheme::RowWise),
            ADAGRAD_STATE_MULTIPLIER,
        )
        .expect_err("M3 must overflow");
        assert!(matches!(err, PlacementError::Capacity { .. }));
    }

    #[test]
    fn m3_fits_in_zion_system_memory() {
        let m3 = production_model(ProductionModelId::M3);
        let zion = Platform::zion_prototype();
        let p = Placement::plan(
            &m3,
            &zion,
            PlacementStrategy::SystemMemory,
            ADAGRAD_STATE_MULTIPLIER,
        )
        .expect("2 TB holds hundreds of GB");
        assert_eq!(p.host_bytes(), p.total_bytes());
    }

    #[test]
    fn grown_m3_overflows_big_basin_host_memory() {
        // M3 itself (~hundreds of GB with optimizer state) squeezes into the
        // 256 GB host, but the paper notes model sizes "continue to grow
        // into multiple TBs" — a 4x-hash M3 overflows the Big Basin host.
        let m3 = production_model(ProductionModelId::M3).with_hash_scale(4);
        let err = Placement::plan(
            &m3,
            &big_basin(),
            PlacementStrategy::SystemMemory,
            ADAGRAD_STATE_MULTIPLIER,
        )
        .expect_err("256 GB host cannot hold 4x M3 + optimizer state");
        assert!(matches!(err, PlacementError::Capacity { .. }));
        // ... while Zion's 2 TB still holds it.
        Placement::plan(
            &m3,
            &Platform::zion_prototype(),
            PlacementStrategy::SystemMemory,
            ADAGRAD_STATE_MULTIPLIER,
        )
        .expect("Zion holds 4x M3");
    }

    #[test]
    fn remote_placement_balances_traffic() {
        let m3 = production_model(ProductionModelId::M3);
        let p = Placement::plan(
            &m3,
            &big_basin(),
            PlacementStrategy::RemoteCpu { servers: 8 },
            ADAGRAD_STATE_MULTIPLIER,
        )
        .expect("8 x 256 GB holds M3");
        let loads = p.remote_loads();
        assert_eq!(loads.len(), 8);
        assert!(loads.iter().all(|&l| l > 0), "all servers used");
        let (_, _, remote) = p.gather_split();
        assert!(remote > 0);
        assert_eq!(p.fraction_on_gpu(), 0.0);
    }

    #[test]
    fn hybrid_puts_hot_tables_on_gpu() {
        // Heterogeneous tables: hot small ones plus cold huge ones that
        // cannot fit any single 16 GiB GPU (Figure 6's "some of the most
        // accessed tables are relatively small").
        use recsim_data::schema::{Interaction, SparseFeatureSpec};
        let mut sparse = Vec::new();
        for i in 0..4 {
            sparse.push(SparseFeatureSpec::new(format!("hot_{i}"), 1_000_000, 30.0));
        }
        for i in 0..4 {
            sparse.push(SparseFeatureSpec::new(
                format!("cold_{i}"),
                100_000_000,
                2.0,
            ));
        }
        let cfg = ModelConfig::new(
            "hybrid-test",
            64,
            sparse,
            32,
            vec![512],
            vec![512],
            Interaction::DotProduct,
            32,
        );
        let p = Placement::plan(
            &cfg,
            &Platform::big_basin(Bytes::from_gib(16)),
            PlacementStrategy::Hybrid,
            ADAGRAD_STATE_MULTIPLIER,
        )
        .expect("spills to host");
        assert!(p.fraction_on_gpu() > 0.5, "hot tables land on GPU");
        assert!(p.host_bytes() > 0, "cold tables spilled to host");
        // The spilled ones are the cold giants.
        for a in p.assignments() {
            if a.location == TableLocation::HostMemory {
                assert!(a.bytes > (1u64 << 33), "only giants spill");
            }
        }
    }

    #[test]
    fn gpu_strategy_requires_gpus() {
        let err = Placement::plan(
            &test_config(1000),
            &Platform::dual_socket_cpu(),
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            1.0,
        )
        .expect_err("no GPUs");
        assert_eq!(err, PlacementError::NoGpus);
    }

    #[test]
    fn row_wise_spreads_evenly() {
        let p = Placement::plan(
            &test_config(1_000_000),
            &big_basin(),
            PlacementStrategy::GpuMemory(PartitionScheme::RowWise),
            1.0,
        )
        .expect("fits");
        assert!(p.gpu_imbalance() < 1.01);
        assert_eq!(p.gpus_used(), 8);
    }

    #[test]
    fn min_gpus_grows_with_hash_size() {
        let bb = big_basin();
        let small = min_gpus_needed(&test_config(100_000), &bb, 2.0).unwrap();
        let large = min_gpus_needed(&test_config(100_000_000), &bb, 2.0).unwrap();
        assert!(small <= large);
        assert!(large >= 2, "800M rows x 32 dims x 8B needs several GPUs");
        assert_eq!(
            min_gpus_needed(&test_config(100_000), &Platform::dual_socket_cpu(), 2.0),
            None
        );
    }

    #[test]
    fn describe_covers_every_table_and_location_class() {
        let p = Placement::plan(
            &test_config(100_000),
            &big_basin(),
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            1.0,
        )
        .expect("fits");
        let text = p.describe();
        assert!(text.contains("table-wise"));
        for t in 0..8 {
            assert!(text.contains(&format!("table   {t}")), "{text}");
        }
        assert!(text.contains("GPU loads"));
    }

    #[test]
    fn planned_placements_validate_cleanly() {
        let bb = big_basin();
        let cfg = test_config(100_000);
        for strategy in [
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            PlacementStrategy::GpuMemory(PartitionScheme::RowWise),
            PlacementStrategy::GpuMemory(PartitionScheme::Replicated),
            PlacementStrategy::SystemMemory,
            PlacementStrategy::RemoteCpu { servers: 4 },
            PlacementStrategy::Hybrid,
        ] {
            let p = Placement::plan(&cfg, &bb, strategy, ADAGRAD_STATE_MULTIPLIER)
                .expect("small model places everywhere");
            assert!(p.check().is_ok(), "{strategy:?} should validate");
        }
    }

    #[test]
    fn over_capacity_plan_is_rv021() {
        let a = TableAssignment {
            table: 0,
            bytes: 100,
            gather_bytes_per_example: 8,
            pooled_bytes_per_example: 8,
            location: TableLocation::Gpu(0),
        };
        let p = Placement::from_parts(
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            vec![a],
            2,
            64, // capacity below the 100 bytes routed to GPU 0
            0,
            0,
        );
        let err = p.check().expect_err("over capacity");
        assert!(err.has_code(Code::PlacementOverCapacity));
    }

    #[test]
    fn dangling_gpu_reference_is_rv022() {
        let a = TableAssignment {
            table: 0,
            bytes: 100,
            gather_bytes_per_example: 8,
            pooled_bytes_per_example: 8,
            location: TableLocation::Gpu(5),
        };
        let p = Placement::from_parts(
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            vec![a],
            2,
            1 << 30,
            0,
            0,
        );
        let err = p.check().expect_err("GPU 5 does not exist");
        assert!(err.has_code(Code::DanglingResource));
    }

    #[test]
    fn duplicate_table_assignment_is_rv023() {
        let a = TableAssignment {
            table: 3,
            bytes: 100,
            gather_bytes_per_example: 8,
            pooled_bytes_per_example: 8,
            location: TableLocation::HostMemory,
        };
        let p = Placement::from_parts(PlacementStrategy::SystemMemory, vec![a, a], 0, 0, 0, 0);
        let err = p.check().expect_err("table 3 assigned twice");
        assert!(err.has_code(Code::InvalidPlacement));
    }

    #[test]
    fn capacity_error_is_displayable() {
        let err = PlacementError::Capacity {
            location: "GPU 0".into(),
            needed: Bytes::from_gib(100),
            available: Bytes::from_gib(32),
        };
        let msg = err.to_string();
        assert!(msg.contains("GPU 0") && msg.contains("100"));
    }
}
