//! Embedding-table placement strategies and partitioners.
//!
//! Section IV.B.1 of the paper describes four strategies for storing
//! embedding tables when training on accelerated systems — GPU memory (with
//! table-wise or row-wise partitioning), system memory of the GPU server,
//! system memory of remote CPU servers, and a hybrid of GPU + system memory
//! (its Figure 8). The optimal choice is the crux of the paper's
//! production case studies: M1/M2 run best with tables on GPU HBM, M3's
//! hundreds of GBs force remote placement on Big Basin, and Zion's 2 TB
//! system memory flips the answer again.
//!
//! This crate turns a ([`ModelConfig`], [`Platform`], [`PlacementStrategy`])
//! triple into a concrete [`Placement`] — which table lives where — or a
//! typed capacity error, and provides the load/traffic summaries the
//! simulator consumes.
//!
//! [`ModelConfig`]: recsim_data::schema::ModelConfig
//! [`Platform`]: recsim_hw::Platform

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod partition;
pub mod plan;
pub mod strategy;

pub use plan::{
    table_demands, Placement, PlacementError, TableAssignment, TableDemand, TableLocation,
};
pub use strategy::{PartitionScheme, PlacementStrategy};
