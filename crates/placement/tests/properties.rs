//! Property-based tests: placements never exceed capacity and conserve
//! tables.

use proptest::prelude::*;
use recsim_data::schema::ModelConfig;
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_placement::partition::{
    bin_loads, greedy_balance, greedy_pack, load_imbalance, refine_balance,
};
use recsim_placement::plan::gpu_table_capacity;
use recsim_placement::{PartitionScheme, Placement, PlacementStrategy, TableLocation};

fn arb_strategy() -> impl Strategy<Value = PlacementStrategy> {
    prop_oneof![
        Just(PlacementStrategy::GpuMemory(PartitionScheme::TableWise)),
        Just(PlacementStrategy::GpuMemory(PartitionScheme::RowWise)),
        Just(PlacementStrategy::SystemMemory),
        (1u32..16).prop_map(|servers| PlacementStrategy::RemoteCpu { servers }),
        Just(PlacementStrategy::Hybrid),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn placement_conserves_tables_and_capacity(
        sparse in 1usize..32,
        hash in 1_000u64..50_000_000,
        strategy in arb_strategy(),
    ) {
        let config = ModelConfig::test_suite(64, sparse, hash, &[256]);
        let platform = Platform::big_basin(Bytes::from_gib(32));
        match Placement::plan(&config, &platform, strategy, 2.0) {
            Ok(p) => {
                // Every table is assigned exactly once, in feature order.
                prop_assert_eq!(p.assignments().len(), sparse);
                for (i, a) in p.assignments().iter().enumerate() {
                    prop_assert_eq!(a.table, i);
                }
                // Capacity invariants per location class.
                let per_gpu = gpu_table_capacity(&platform);
                for &load in &p.gpu_loads() {
                    prop_assert!(load <= per_gpu, "GPU overfull: {load} > {per_gpu}");
                }
                let host_cap = platform.host().memory().capacity().as_u64();
                prop_assert!(p.host_bytes() <= host_cap);
                // Byte conservation.
                let located: u64 = p.gpu_loads().iter().sum::<u64>()
                    + p.host_bytes()
                    + p.remote_loads().iter().sum::<u64>();
                let diff = p.total_bytes().abs_diff(located);
                // Row-wise sharding may lose < num_gpus bytes to integer
                // division.
                prop_assert!(diff < 64, "byte conservation, diff {diff}");
                // Gather split covers all traffic.
                let (g, h, r) = p.gather_split();
                let total: u64 = p
                    .assignments()
                    .iter()
                    .map(|a| a.gather_bytes_per_example)
                    .sum();
                prop_assert_eq!(g + h + r, total);
            }
            Err(_) => {
                // Errors are only legitimate when something genuinely cannot
                // fit. System memory errors require total > capacity, etc.
                let total = (config.total_embedding_bytes() as f64 * 2.0) as u64;
                match strategy {
                    PlacementStrategy::SystemMemory => {
                        prop_assert!(total > platform.host().memory().capacity().as_u64());
                    }
                    PlacementStrategy::GpuMemory(_) => {
                        // At least one GPU's worth must be exceeded somewhere.
                        prop_assert!(
                            total > gpu_table_capacity(&platform)
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn greedy_pack_never_exceeds_capacity(
        weights in prop::collection::vec(1u64..100, 0..40),
        bins in 1usize..8,
        capacity in 50u64..500,
    ) {
        if let Ok(assignment) = greedy_pack(&weights, bins, capacity) {
            let loads = bin_loads(&weights, &assignment, bins);
            for &l in &loads {
                prop_assert!(l <= capacity);
            }
            prop_assert_eq!(loads.iter().sum::<u64>(), weights.iter().sum::<u64>());
        }
    }

    #[test]
    fn greedy_balance_within_twice_optimal(
        weights in prop::collection::vec(1u64..1000, 1..50),
        bins in 1usize..8,
    ) {
        // LPT is a 4/3-approximation; assert the weaker 2x bound.
        let assignment = greedy_balance(&weights, bins);
        let loads = bin_loads(&weights, &assignment, bins);
        let total: u64 = weights.iter().sum();
        let lower = (total as f64 / bins as f64)
            .max(*weights.iter().max().unwrap() as f64);
        let max = *loads.iter().max().unwrap() as f64;
        prop_assert!(max <= 2.0 * lower + 1e-9);
        prop_assert!(load_imbalance(&loads) >= 1.0 - 1e-12);
    }

    #[test]
    fn refinement_never_increases_max_load(
        weights in prop::collection::vec(1u64..1000, 1..40),
        bins in 1usize..8,
        iterations in 0usize..32,
    ) {
        let mut assignment = greedy_balance(&weights, bins);
        let before = *bin_loads(&weights, &assignment, bins).iter().max().unwrap();
        refine_balance(&weights, &mut assignment, bins, iterations);
        let loads = bin_loads(&weights, &assignment, bins);
        let after = *loads.iter().max().unwrap();
        prop_assert!(after <= before, "refinement worsened: {before} -> {after}");
        // Conservation.
        prop_assert_eq!(loads.iter().sum::<u64>(), weights.iter().sum::<u64>());
        prop_assert!(assignment.iter().all(|&b| b < bins));
    }

    #[test]
    fn remote_placement_uses_requested_server_range(
        sparse in 1usize..32,
        servers in 1u32..16,
    ) {
        let config = ModelConfig::test_suite(32, sparse, 10_000, &[64]);
        let platform = Platform::big_basin(Bytes::from_gib(16));
        let p = Placement::plan(
            &config,
            &platform,
            PlacementStrategy::RemoteCpu { servers },
            1.0,
        ).expect("small tables always fit");
        for a in p.assignments() {
            match a.location {
                TableLocation::Remote(s) => prop_assert!(s < servers as usize),
                other => prop_assert!(false, "unexpected location {other:?}"),
            }
        }
    }
}
