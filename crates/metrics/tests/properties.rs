//! Property-based tests for the metrics crate invariants.

use proptest::prelude::*;
use recsim_metrics::{quantile, Histogram, Kde, OnlineStats, Series, Summary};

fn finite_f64() -> impl Strategy<Value = f64> {
    (-1e6f64..1e6f64).prop_filter("finite", |x| x.is_finite())
}

proptest! {
    #[test]
    fn online_stats_mean_within_min_max(xs in prop::collection::vec(finite_f64(), 1..200)) {
        let s: OnlineStats = xs.iter().copied().collect();
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
    }

    #[test]
    fn online_stats_merge_associative(
        a in prop::collection::vec(finite_f64(), 0..50),
        b in prop::collection::vec(finite_f64(), 0..50),
    ) {
        let mut merged: OnlineStats = a.iter().copied().collect();
        let sb: OnlineStats = b.iter().copied().collect();
        merged.merge(&sb);
        let seq: OnlineStats = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.count(), seq.count());
        prop_assert!((merged.mean() - seq.mean()).abs() < 1e-6);
        prop_assert!((merged.sample_variance() - seq.sample_variance()).abs() < 1e-3);
    }

    #[test]
    fn quantiles_are_monotone(
        mut xs in prop::collection::vec(finite_f64(), 2..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-9);
    }

    #[test]
    fn quantile_bounded_by_extremes(
        mut xs in prop::collection::vec(finite_f64(), 1..100),
        q in 0.0f64..1.0,
    ) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let v = quantile(&xs, q);
        prop_assert!(v >= xs[0] - 1e-9 && v <= xs[xs.len() - 1] + 1e-9);
    }

    #[test]
    fn histogram_total_equals_records(xs in prop::collection::vec(finite_f64(), 0..300)) {
        let mut h = Histogram::with_range(-100.0, 100.0, 20);
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.total(), xs.len() as u64);
        let sum: u64 = (0..h.bins()).map(|i| h.count(i)).sum();
        prop_assert_eq!(sum, xs.len() as u64);
    }

    #[test]
    fn histogram_fractions_sum_to_one(xs in prop::collection::vec(finite_f64(), 1..100)) {
        let mut h = Histogram::with_range(-10.0, 10.0, 7);
        for &x in &xs {
            h.record(x);
        }
        let sum: f64 = (0..h.bins()).map(|i| h.fraction(i)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kde_density_nonnegative(
        xs in prop::collection::vec(-100.0f64..100.0, 1..50),
        probe in -200.0f64..200.0,
    ) {
        let kde = Kde::fit(&xs);
        let d = kde.density(probe);
        prop_assert!(d >= 0.0 && d.is_finite());
    }

    #[test]
    fn series_normalization_starts_at_one(
        ys in prop::collection::vec(0.001f64..1e5, 1..50),
    ) {
        let s = Series::from_points(
            "p",
            ys.iter().enumerate().map(|(i, &y)| (i as f64, y)).collect(),
        );
        let n = s.normalized_to_first();
        prop_assert!((n.points()[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_whiskers_within_range(xs in prop::collection::vec(finite_f64(), 1..200)) {
        let mut s = Summary::from_samples(xs.clone());
        let (p5, p25, p50, p75, p95) = s.whiskers();
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p5 >= lo - 1e-9 && p95 <= hi + 1e-9);
        prop_assert!(p5 <= p25 && p25 <= p50 && p50 <= p75 && p75 <= p95);
    }
}
