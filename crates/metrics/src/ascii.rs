//! Terminal chart rendering: horizontal bar charts and multi-series line
//! plots, so every experiment binary can show the *shape* of its result.

use crate::{Figure, Histogram};

/// Renders a horizontal bar chart from `(label, value)` pairs.
///
/// Bars are scaled to `width` characters at the maximum value.
///
/// # Example
///
/// ```
/// let s = recsim_metrics::ascii::bar_chart(
///     &[("cpu".to_string(), 1.0), ("gpu".to_string(), 2.0)], 10);
/// assert!(s.contains("cpu"));
/// assert!(s.lines().count() == 2);
/// ```
pub fn bar_chart(items: &[(String, f64)], width: usize) -> String {
    if items.is_empty() {
        return String::new();
    }
    let max = items
        .iter()
        .map(|(_, v)| v.abs())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in items {
        let n = ((value.abs() / max) * width as f64).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$} | {} {value:.4}\n",
            "#".repeat(n)
        ));
    }
    out
}

/// Renders a [`Histogram`] as a bar chart with bin-center labels.
pub fn histogram_chart(hist: &Histogram, width: usize) -> String {
    let items: Vec<(String, f64)> = hist
        .iter()
        .map(|(center, count)| (format!("{center:>10.1}"), count as f64))
        .collect();
    bar_chart(&items, width)
}

/// Renders a multi-series line plot on a `width`×`height` character canvas.
///
/// Each series gets a distinct glyph (`*`, `o`, `+`, `x`, …). Axes are scaled
/// to the joint range of all series. Returns an empty string when there is
/// nothing to plot.
pub fn line_plot(figure: &Figure, width: usize, height: usize) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '@', '%', '&', '='];
    let all: Vec<(f64, f64)> = figure
        .series()
        .iter()
        .flat_map(|s| s.points().iter().copied())
        .collect();
    if all.is_empty() || width < 2 || height < 2 {
        return String::new();
    }
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    if x_hi == x_lo {
        x_hi = x_lo + 1.0;
    }
    if y_hi == y_lo {
        y_hi = y_lo + 1.0;
    }
    let mut canvas = vec![vec![' '; width]; height];
    for (si, series) in figure.series().iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in series.points() {
            let cx = (((x - x_lo) / (x_hi - x_lo)) * (width - 1) as f64).round() as usize;
            let cy = (((y - y_lo) / (y_hi - y_lo)) * (height - 1) as f64).round() as usize;
            canvas[height - 1 - cy][cx] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{} — {} vs {}\n",
        figure.title(),
        figure.y_label(),
        figure.x_label()
    ));
    out.push_str(&format!("{y_hi:>12.3} ┌{}\n", "─".repeat(width)));
    for (i, row) in canvas.iter().enumerate() {
        let prefix = if i == height - 1 {
            format!("{y_lo:>12.3} └")
        } else {
            format!("{:>12} │", "")
        };
        out.push_str(&prefix);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>14}{x_lo:<.3} .. {x_hi:.3}\n", ""));
    for (si, series) in figure.series().iter().enumerate() {
        out.push_str(&format!(
            "  {} = {}\n",
            GLYPHS[si % GLYPHS.len()],
            series.name()
        ));
    }
    out
}

/// Renders each series of the figure as its own labelled bar chart block —
/// useful when x values are categorical (placement strategies, platforms).
pub fn grouped_bars(figure: &Figure, width: usize) -> String {
    let mut out = String::new();
    for series in figure.series() {
        out.push_str(series.name());
        out.push('\n');
        let items: Vec<(String, f64)> = series
            .points()
            .iter()
            .map(|&(x, y)| (format!("x={x:.0}"), y))
            .collect();
        out.push_str(&bar_chart(&items, width));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Series;

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart(&[("a".to_string(), 1.0), ("b".to_string(), 2.0)], 10);
        let lines: Vec<&str> = s.lines().collect();
        let hashes = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes(lines[0]), 5);
        assert_eq!(hashes(lines[1]), 10);
    }

    #[test]
    fn empty_inputs_render_empty() {
        assert_eq!(bar_chart(&[], 10), "");
        let fig = Figure::new("t", "x", "y");
        assert_eq!(line_plot(&fig, 20, 10), "");
    }

    #[test]
    fn line_plot_contains_glyphs_and_legend() {
        let fig = Figure::new("t", "x", "y")
            .with_series(Series::from_points("up", vec![(0.0, 0.0), (1.0, 1.0)]))
            .with_series(Series::from_points("down", vec![(0.0, 1.0), (1.0, 0.0)]));
        let s = line_plot(&fig, 20, 10);
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("up"));
        assert!(s.contains("down"));
    }

    #[test]
    fn line_plot_handles_flat_series() {
        let fig = Figure::new("t", "x", "y")
            .with_series(Series::from_points("flat", vec![(0.0, 5.0), (1.0, 5.0)]));
        let s = line_plot(&fig, 10, 5);
        assert!(s.contains('*'));
    }

    #[test]
    fn histogram_chart_has_bin_per_line() {
        let mut h = Histogram::with_range(0.0, 4.0, 4);
        h.record(0.5);
        h.record(3.5);
        let s = histogram_chart(&h, 8);
        assert_eq!(s.lines().count(), 4);
    }
}
