//! Gaussian kernel density estimation.
//!
//! The paper's Figure 7 overlays a kernel density estimate on the
//! feature-length histograms of the three production models; [`Kde`] is that
//! estimator.

use serde::{Deserialize, Serialize};

const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// A Gaussian kernel density estimator over a one-dimensional sample.
///
/// Bandwidth defaults to Silverman's rule of thumb and can be overridden with
/// [`Kde::with_bandwidth`].
///
/// # Example
///
/// ```
/// use recsim_metrics::Kde;
///
/// let kde = Kde::fit(&[1.0, 1.1, 0.9, 5.0, 5.1, 4.9]);
/// // Density near the two clusters dominates density between them.
/// assert!(kde.density(1.0) > kde.density(3.0));
/// assert!(kde.density(5.0) > kde.density(3.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kde {
    samples: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Fits a KDE with Silverman's rule-of-thumb bandwidth:
    /// `0.9 * min(std, IQR/1.34) * n^(-1/5)`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN.
    pub fn fit(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "KDE needs at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in KDE samples"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let std = (sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n).sqrt();
        let iqr = crate::stats::quantile(&sorted, 0.75) - crate::stats::quantile(&sorted, 0.25);
        let spread = if iqr > 0.0 { std.min(iqr / 1.34) } else { std };
        // Degenerate samples (all equal) still need a positive bandwidth.
        let bandwidth = (0.9 * spread * n.powf(-0.2)).max(1e-9);
        Self {
            samples: sorted,
            bandwidth,
        }
    }

    /// Fits a KDE with an explicit bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `bandwidth` is not strictly positive.
    pub fn with_bandwidth(samples: &[f64], bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        let mut kde = Self::fit(samples);
        kde.bandwidth = bandwidth;
        kde
    }

    /// The bandwidth in use.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Number of samples the estimate is built from.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if fitted on an empty sample (never true: construction
    /// forbids it), provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Estimated probability density at `x`.
    pub fn density(&self, x: f64) -> f64 {
        let h = self.bandwidth;
        let sum: f64 = self
            .samples
            .iter()
            .map(|&xi| {
                let u = (x - xi) / h;
                INV_SQRT_2PI * (-0.5 * u * u).exp()
            })
            .sum();
        sum / (self.samples.len() as f64 * h)
    }

    /// Evaluates the density on `points` evenly spaced points spanning the
    /// sample range padded by three bandwidths, returning `(x, density)`
    /// pairs — the curve the figure plots.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "a curve needs at least two points");
        let lo = self.samples[0] - 3.0 * self.bandwidth;
        let hi = self.samples[self.samples.len() - 1] + 3.0 * self.bandwidth;
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, self.density(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_nonnegative_and_peaks_at_data() {
        let kde = Kde::fit(&[0.0, 0.0, 0.1, -0.1]);
        assert!(kde.density(0.0) > kde.density(2.0));
        assert!(kde.density(2.0) >= 0.0);
    }

    #[test]
    fn integrates_to_one_approximately() {
        let kde = Kde::fit(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        // trapezoid rule over a wide range
        let lo = -10.0;
        let hi = 20.0;
        let n = 3000;
        let step = (hi - lo) / n as f64;
        let mut integral = 0.0;
        for i in 0..n {
            let x0 = lo + step * i as f64;
            integral += (kde.density(x0) + kde.density(x0 + step)) / 2.0 * step;
        }
        assert!((integral - 1.0).abs() < 1e-3, "integral = {integral}");
    }

    #[test]
    fn degenerate_sample_has_positive_bandwidth() {
        let kde = Kde::fit(&[7.0, 7.0, 7.0]);
        assert!(kde.bandwidth() > 0.0);
        assert!(kde.density(7.0).is_finite());
    }

    #[test]
    fn curve_covers_sample_range() {
        let kde = Kde::fit(&[0.0, 10.0]);
        let curve = kde.curve(50);
        assert_eq!(curve.len(), 50);
        assert!(curve.first().unwrap().0 < 0.0);
        assert!(curve.last().unwrap().0 > 10.0);
        // x strictly increasing
        for w in curve.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn explicit_bandwidth_respected() {
        let kde = Kde::with_bandwidth(&[0.0, 1.0], 0.5);
        assert_eq!(kde.bandwidth(), 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_fit_panics() {
        Kde::fit(&[]);
    }
}
