//! Linear- and logarithmic-binned histograms.

use serde::{Deserialize, Serialize};

/// A fixed-range, linearly binned histogram.
///
/// Out-of-range observations are clamped into the first/last bin so that
/// `total()` always equals the number of `record` calls — the fleet
/// characterization experiments count *every* run.
///
/// # Example
///
/// ```
/// use recsim_metrics::Histogram;
///
/// let mut h = Histogram::with_range(0.0, 100.0, 10);
/// h.record(5.0);
/// h.record(15.0);
/// h.record(15.5);
/// assert_eq!(h.count(0), 1);
/// assert_eq!(h.count(1), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `lo >= hi`, or either bound is non-finite.
    pub fn with_range(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Records one observation, clamping out-of-range values to the edge
    /// bins.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        self.record_n(x, 1);
    }

    /// Records `n` identical observations at once.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record_n(&mut self, x: f64, n: u64) {
        assert!(!x.is_nan(), "Histogram::record received NaN");
        let idx = self.bin_index(x);
        self.counts[idx] += n;
        self.total += n;
    }

    /// The bin that `x` would fall into (clamped to the edges).
    pub fn bin_index(&self, x: f64) -> usize {
        let bins = self.counts.len();
        if x <= self.lo {
            return 0;
        }
        if x >= self.hi {
            return bins - 1;
        }
        let frac = (x - self.lo) / (self.hi - self.lo);
        ((frac * bins as f64) as usize).min(bins - 1)
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// `(lower, upper)` edge of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let (a, b) = self.bin_edges(i);
        (a + b) / 2.0
    }

    /// Fraction of all observations in bin `i`; `0.0` when empty.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Iterator over `(bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.counts.len()).map(|i| (self.bin_center(i), self.counts[i]))
    }

    /// Index of the most populated bin (ties resolve to the lowest index);
    /// `None` when empty.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let mut best = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Fraction of observations in the most populated bin; `0.0` when empty.
    ///
    /// The paper observes that “over 40% of the workflows use the same number
    /// of trainers” — this is the statistic that checks it.
    pub fn mode_fraction(&self) -> f64 {
        self.mode_bin().map_or(0.0, |i| self.fraction(i))
    }
}

/// A histogram with logarithmically spaced bins, for quantities spanning
/// orders of magnitude (hash sizes range from 30 to 20 million in the paper's
/// Figure 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    log_lo: f64,
    log_hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl LogHistogram {
    /// Creates a histogram over `[lo, hi)` with `bins` log-uniform bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo`/`hi` are not strictly positive and
    /// ordered.
    pub fn with_range(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo > 0.0 && hi > lo, "log histogram needs 0 < lo < hi");
        Self {
            log_lo: lo.ln(),
            log_hi: hi.ln(),
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Records one observation (clamped to the edge bins; `x` must be > 0).
    ///
    /// # Panics
    ///
    /// Panics if `x` is not strictly positive or is NaN.
    pub fn record(&mut self, x: f64) {
        assert!(x > 0.0, "LogHistogram::record needs positive values");
        let bins = self.counts.len();
        let lx = x.ln();
        let idx = if lx <= self.log_lo {
            0
        } else if lx >= self.log_hi {
            bins - 1
        } else {
            let frac = (lx - self.log_lo) / (self.log_hi - self.log_lo);
            ((frac * bins as f64) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Geometric midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.log_hi - self.log_lo) / self.counts.len() as f64;
        (self.log_lo + w * (i as f64 + 0.5)).exp()
    }

    /// Iterator over `(geometric_bin_center, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        (0..self.counts.len()).map(|i| (self.bin_center(i), self.counts[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_out_of_range() {
        let mut h = Histogram::with_range(0.0, 10.0, 5);
        h.record(-3.0);
        h.record(100.0);
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn boundary_goes_to_upper_bin() {
        let mut h = Histogram::with_range(0.0, 10.0, 5);
        h.record(2.0); // exactly on the boundary between bin 0 and 1
        assert_eq!(h.count(1), 1);
    }

    #[test]
    fn bin_edges_partition_range() {
        let h = Histogram::with_range(0.0, 10.0, 4);
        assert_eq!(h.bin_edges(0), (0.0, 2.5));
        assert_eq!(h.bin_edges(3), (7.5, 10.0));
        assert_eq!(h.bin_center(1), 3.75);
    }

    #[test]
    fn mode_fraction() {
        let mut h = Histogram::with_range(0.0, 10.0, 10);
        for _ in 0..6 {
            h.record(3.5);
        }
        for _ in 0..4 {
            h.record(7.5);
        }
        assert_eq!(h.mode_bin(), Some(3));
        assert!((h.mode_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_mode_is_none() {
        let h = Histogram::with_range(0.0, 1.0, 2);
        assert_eq!(h.mode_bin(), None);
        assert_eq!(h.mode_fraction(), 0.0);
    }

    #[test]
    fn log_histogram_spreads_orders_of_magnitude() {
        let mut h = LogHistogram::with_range(1.0, 1e6, 6);
        h.record(5.0); // decade 0
        h.record(5_000.0); // decade 3
        h.record(500_000.0); // decade 5
        let occupied: Vec<usize> = (0..6).filter(|&i| h.count(i) > 0).collect();
        assert_eq!(occupied.len(), 3);
        assert_eq!(h.total(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_histogram_rejects_zero() {
        LogHistogram::with_range(1.0, 10.0, 2).record(0.0);
    }

    #[test]
    fn record_n_bulk() {
        let mut h = Histogram::with_range(0.0, 1.0, 2);
        h.record_n(0.25, 10);
        assert_eq!(h.count(0), 10);
        assert_eq!(h.total(), 10);
        assert_eq!(h.fraction(0), 1.0);
    }
}
