//! Streaming moments, five-number summaries and quantiles.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator using Welford's algorithm.
///
/// Numerically stable for long streams; `O(1)` memory. Use [`Summary`] when
/// quantiles are also needed (it stores the samples).
///
/// # Example
///
/// ```
/// use recsim_metrics::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN: statistics over NaN are meaningless and a NaN
    /// here always indicates an upstream bug.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "OnlineStats::push received NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sample variance (Bessel-corrected); `0.0` for fewer than 2 samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance; `0.0` when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Coefficient of variation (std dev / mean); `0.0` when mean is 0.
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.sample_std_dev() / m
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

/// Linear-interpolation quantile of a sorted slice (type-7, the default of R
/// and NumPy).
///
/// `q` must be in `[0, 1]`.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(recsim_metrics::quantile(&xs, 0.5), 2.5);
/// assert_eq!(recsim_metrics::quantile(&xs, 0.0), 1.0);
/// assert_eq!(recsim_metrics::quantile(&xs, 1.0), 4.0);
/// ```
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns `0.0` when either side has zero variance (no linear relationship
/// is measurable).
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than two elements.
///
/// # Example
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((recsim_metrics::stats::pearson(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    assert!(x.len() >= 2, "correlation needs at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// A full distribution summary over a stored sample: moments plus quantiles.
///
/// Used for the utilization-distribution experiment (paper Figure 5), where
/// boxes and whiskers (p5/p25/p50/p75/p95) are the reported quantity.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a summary from an existing sample.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        let mut s = Self {
            samples,
            sorted: false,
        };
        s.ensure_sorted();
        s
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "Summary::push received NaN");
        self.samples.push(x);
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN in Summary"));
            self.sorted = true;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Sample standard deviation; `0.0` for fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// Quantile with linear interpolation.
    ///
    /// # Panics
    ///
    /// Panics when empty or when `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        self.ensure_sorted();
        quantile(&self.samples, q)
    }

    /// Median (p50).
    ///
    /// # Panics
    ///
    /// Panics when empty.
    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum.
    ///
    /// # Panics
    ///
    /// Panics when empty.
    pub fn min(&mut self) -> f64 {
        self.quantile(0.0)
    }

    /// Maximum.
    ///
    /// # Panics
    ///
    /// Panics when empty.
    pub fn max(&mut self) -> f64 {
        self.quantile(1.0)
    }

    /// The box-and-whisker five-tuple `(p5, p25, p50, p75, p95)` used
    /// throughout the utilization figures.
    ///
    /// # Panics
    ///
    /// Panics when empty.
    pub fn whiskers(&mut self) -> (f64, f64, f64, f64, f64) {
        (
            self.quantile(0.05),
            self.quantile(0.25),
            self.quantile(0.50),
            self.quantile(0.75),
            self.quantile(0.95),
        )
    }

    /// Interquartile range (p75 − p25).
    ///
    /// # Panics
    ///
    /// Panics when empty.
    pub fn iqr(&mut self) -> f64 {
        self.quantile(0.75) - self.quantile(0.25)
    }

    /// Read-only view of the (possibly unsorted) samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Sorted view of the samples.
    pub fn sorted_samples(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.samples
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn online_stats_single() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn online_stats_matches_naive() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-10);
        assert!((s.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..57).map(|i| i as f64 * 0.37 - 3.0).collect();
        let (a, b) = xs.split_at(23);
        let mut sa: OnlineStats = a.iter().copied().collect();
        let sb: OnlineStats = b.iter().copied().collect();
        sa.merge(&sb);
        let all: OnlineStats = xs.iter().copied().collect();
        assert_eq!(sa.count(), all.count());
        assert!((sa.mean() - all.mean()).abs() < 1e-10);
        assert!((sa.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(sa.min(), all.min());
        assert_eq!(sa.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn online_stats_rejects_nan() {
        OnlineStats::new().push(f64::NAN);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&xs, 0.5), 30.0);
        assert_eq!(quantile(&xs, 0.25), 20.0);
        assert!((quantile(&xs, 0.1) - 14.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile(&[], 0.5);
    }

    #[test]
    fn pearson_detects_sign_and_independence() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let up: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let down: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &down) + 1.0).abs() < 1e-12);
        let flat = [7.0; 5];
        assert_eq!(pearson(&x, &flat), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pearson_checks_lengths() {
        pearson(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn summary_whiskers_ordered() {
        let mut s: Summary = (0..1000).map(|i| (i as f64 * 7919.0) % 100.0).collect();
        let (p5, p25, p50, p75, p95) = s.whiskers();
        assert!(p5 <= p25 && p25 <= p50 && p50 <= p75 && p75 <= p95);
    }

    #[test]
    fn summary_median_of_even() {
        let mut s = Summary::from_samples(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median(), 2.5);
    }

    #[test]
    fn summary_std_dev() {
        let s = Summary::from_samples(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        // population std dev is 2; sample std dev is sqrt(32/7)
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }
}
