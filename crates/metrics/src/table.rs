//! Aligned, Markdown-compatible table rendering for experiment reports.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple column-aligned table.
///
/// Every experiment binary prints its result as one of these so the output
/// can be diffed against the paper's tables.
///
/// # Example
///
/// ```
/// use recsim_metrics::Table;
///
/// let mut t = Table::new(vec!["model", "speedup"]);
/// t.push_row(vec!["M1".to_string(), "2.25x".to_string()]);
/// let s = t.to_string();
/// assert!(s.contains("M1"));
/// assert!(s.contains("speedup"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Appends a row built from `Display` values.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn push_display_row<D: fmt::Display>(&mut self, row: &[D]) {
        self.push_row(row.iter().map(ToString::to_string).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Cell at `(row, col)` if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {:<w$} |", cell, w = widths[i])?;
            }
            writeln!(f)
        };
        render_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with engineering-style precision appropriate for report
/// tables: large magnitudes get thousands separators dropped in favour of
/// short scientific-ish suffixes (`1.2M`, `3.4k`), small ones keep 3
/// significant decimals.
///
/// # Example
///
/// ```
/// assert_eq!(recsim_metrics::table::humanize(2_500_000.0), "2.50M");
/// assert_eq!(recsim_metrics::table::humanize(1_250.0), "1.25k");
/// assert_eq!(recsim_metrics::table::humanize(0.125), "0.125");
/// ```
pub fn humanize(x: f64) -> String {
    let a = x.abs();
    if a >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if a >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else if a >= 1.0 || a == 0.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_shape() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.push_row(vec!["x".into(), "y".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("| a"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[2].contains("| x"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a"]);
        t.push_row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn display_row_formats() {
        let mut t = Table::new(vec!["n", "v"]);
        t.push_display_row(&[1.5, 2.25]);
        assert_eq!(t.cell(0, 1), Some("2.25"));
    }

    #[test]
    fn humanize_bands() {
        assert_eq!(humanize(5e9), "5.00G");
        assert_eq!(humanize(0.0), "0.00");
        assert_eq!(humanize(42.0), "42.00");
    }

    #[test]
    fn alignment_pads_to_widest() {
        let mut t = Table::new(vec!["h"]);
        t.push_row(vec!["longer-cell".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].len(), lines[2].len());
    }
}
