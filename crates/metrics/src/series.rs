//! Named data series and figures — the exchange format between experiment
//! drivers, benchmark binaries and the renderers.

use serde::{Deserialize, Serialize};

/// A named sequence of `(x, y)` points, e.g. "GPU throughput vs batch size".
///
/// # Example
///
/// ```
/// use recsim_metrics::Series;
///
/// let mut s = Series::new("gpu");
/// s.push(200.0, 1.0);
/// s.push(400.0, 1.9);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.y_at(400.0), Some(1.9));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Creates a series from existing points.
    pub fn from_points(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
        }
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// All x values.
    pub fn xs(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|p| p.0)
    }

    /// All y values.
    pub fn ys(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|p| p.1)
    }

    /// y at the first point whose x equals `x` exactly, if any.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.0 == x).map(|p| p.1)
    }

    /// The x with the largest y; `None` when empty.
    pub fn argmax(&self) -> Option<(f64, f64)> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN in series"))
    }

    /// Divides every y by the y of the first point, producing a series
    /// normalized to its own start — the form used by most paper figures
    /// ("normalized relative throughput").
    ///
    /// # Panics
    ///
    /// Panics when empty or when the first y is zero.
    pub fn normalized_to_first(&self) -> Series {
        let base = self
            .points
            .first()
            .expect("cannot normalize empty series")
            .1;
        assert!(base != 0.0, "cannot normalize to zero");
        Series {
            name: self.name.clone(),
            points: self.points.iter().map(|&(x, y)| (x, y / base)).collect(),
        }
    }

    /// Divides every y by `base`.
    ///
    /// # Panics
    ///
    /// Panics when `base` is zero.
    pub fn scaled_by(&self, base: f64) -> Series {
        assert!(base != 0.0, "cannot scale by zero");
        Series {
            name: self.name.clone(),
            points: self.points.iter().map(|&(x, y)| (x, y / base)).collect(),
        }
    }

    /// Returns `true` when ys never decrease as the points progress.
    pub fn is_non_decreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-12)
    }

    /// Returns `true` when ys never increase as the points progress.
    pub fn is_non_increasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-12)
    }
}

impl Extend<(f64, f64)> for Series {
    fn extend<T: IntoIterator<Item = (f64, f64)>>(&mut self, iter: T) {
        self.points.extend(iter);
    }
}

/// A figure: a titled collection of [`Series`] with axis labels, mirroring
/// one panel of a paper figure.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Figure {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series and returns `self` for chaining.
    pub fn with_series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Adds a series in place.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Figure title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// X-axis label.
    pub fn x_label(&self) -> &str {
        &self.x_label
    }

    /// Y-axis label.
    pub fn y_label(&self) -> &str {
        &self.y_label
    }

    /// The series in insertion order.
    pub fn series(&self) -> &[Series] {
        &self.series
    }

    /// Looks a series up by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// Renders the figure as a CSV block (`x,series1,series2,...`), matching
    /// points by position.
    ///
    /// All series must have the same x grid for the output to be meaningful;
    /// missing trailing points render as empty cells.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name().replace(',', ";"));
        }
        out.push('\n');
        let rows = self.series.iter().map(Series::len).max().unwrap_or(0);
        for i in 0..rows {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points().get(i).map(|p| p.0));
            if let Some(x) = x {
                out.push_str(&format!("{x}"));
            }
            for s in &self.series {
                out.push(',');
                if let Some(p) = s.points().get(i) {
                    out.push_str(&format!("{}", p.1));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        let s = Series::from_points("t", vec![(1.0, 2.0), (2.0, 6.0)]);
        let n = s.normalized_to_first();
        assert_eq!(n.points(), &[(1.0, 1.0), (2.0, 3.0)]);
    }

    #[test]
    fn argmax_finds_peak() {
        let s = Series::from_points("t", vec![(1.0, 2.0), (2.0, 9.0), (3.0, 4.0)]);
        assert_eq!(s.argmax(), Some((2.0, 9.0)));
    }

    #[test]
    fn monotonicity_checks() {
        let up = Series::from_points("u", vec![(0.0, 1.0), (1.0, 2.0), (2.0, 2.0)]);
        assert!(up.is_non_decreasing());
        assert!(!up.is_non_increasing());
        let down = Series::from_points("d", vec![(0.0, 3.0), (1.0, 1.0)]);
        assert!(down.is_non_increasing());
    }

    #[test]
    fn figure_csv_round_shape() {
        let fig = Figure::new("t", "x", "y")
            .with_series(Series::from_points("a", vec![(1.0, 10.0), (2.0, 20.0)]))
            .with_series(Series::from_points("b", vec![(1.0, 30.0), (2.0, 40.0)]));
        let csv = fig.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,30");
        assert_eq!(lines[2], "2,20,40");
    }

    #[test]
    fn series_named_lookup() {
        let fig = Figure::new("t", "x", "y").with_series(Series::new("cpu"));
        assert!(fig.series_named("cpu").is_some());
        assert!(fig.series_named("tpu").is_none());
    }

    #[test]
    #[should_panic(expected = "normalize empty")]
    fn normalize_empty_panics() {
        Series::new("e").normalized_to_first();
    }
}
