//! Statistics and reporting primitives for the `recsim` workspace.
//!
//! The characterization study that `recsim` reproduces is, at its heart, an
//! exercise in descriptive statistics: utilization *distributions* (Figure 5
//! of the paper), feature-length *kernel density estimates* (Figure 7),
//! server-count *histograms* (Figure 9), and throughput *series* swept over
//! model parameters (Figures 10–14). This crate provides those primitives:
//!
//! * [`Summary`] / [`OnlineStats`] — five-number summaries and streaming
//!   moments,
//! * [`Histogram`] / [`LogHistogram`] — linear- and log-binned counting,
//! * [`Kde`] — Gaussian kernel density estimation with Silverman bandwidth,
//! * [`Series`] and [`Figure`] — named *(x, y)* data suitable for rendering,
//! * [`Table`] — aligned Markdown-style table rendering for experiment
//!   reports,
//! * [`ascii`] — terminal bar and line charts so every experiment binary can
//!   show the shape of its result without a plotting stack.
//!
//! # Example
//!
//! ```
//! use recsim_metrics::{OnlineStats, Histogram};
//!
//! let mut stats = OnlineStats::new();
//! let mut hist = Histogram::with_range(0.0, 10.0, 10);
//! for x in [1.0, 2.0, 2.5, 7.0] {
//!     stats.push(x);
//!     hist.record(x);
//! }
//! assert_eq!(stats.count(), 4);
//! assert!((stats.mean() - 3.125).abs() < 1e-12);
//! assert_eq!(hist.total(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod histogram;
pub mod kde;
pub mod series;
pub mod stats;
pub mod table;

pub use histogram::{Histogram, LogHistogram};
pub use kde::Kde;
pub use series::{Figure, Series};
pub use stats::{quantile, OnlineStats, Summary};
pub use table::Table;
