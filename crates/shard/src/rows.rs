//! Per-row hot/cold embedding sharding over a heterogeneous memory
//! hierarchy (RecShard + MTrainS).
//!
//! The per-table solvers in [`crate::solvers`] treat a table as atomic:
//! either its whole footprint earns HBM or none of it does. RecShard's
//! observation is that embedding-row popularity inside one table is itself
//! Zipf-skewed, so a thin *hot slice* of rows captures most of the
//! table's traffic — and MTrainS adds a storage-class-memory tier below
//! host DDR where the barely touched cold tail can live almost for free.
//! This module splits every table into three contiguous row ranges:
//!
//! ```text
//! rank 1 ……… hot_rows | ……… hot+warm | ……………………… rows
//!       HBM           |   host DDR   |   SCM / NVMe
//! ```
//!
//! and prices the split with a hit-rate-weighted access cost: a range
//! holding fraction `m` of the table's lookup mass (from the Zipf access
//! CDF [`recsim_data::dist::ZipfCdf`]) costs `m × rate(tier)`, where the
//! per-tier rates reuse the same hardware numbers as [`crate::CostModel`]
//! plus [`recsim_hw::ScmDevice::random_read_time`] for the cold tier.
//!
//! [`RowShardSolver`] picks split points greedily off the CDF (log-spaced
//! candidate boundaries, filled in benefit-per-byte order);
//! [`per_table_plan`] is the whole-table baseline on the *same* rates and
//! capacities, so the two plans are directly comparable. The solver falls
//! back to the baseline's split when chunk rounding would ever let the
//! baseline win, making "per-row ≥ per-table at equal HBM budget" hold by
//! construction — the `rowshard` experiment asserts it anyway.

use crate::MemoryTier;
use recsim_data::dist::ZipfCdf;
use recsim_data::schema::ModelConfig;
use recsim_hw::units::{Bytes, Duration};
use recsim_hw::{AccessPattern, Platform};
use recsim_placement::plan::{table_demands, ADAGRAD_STATE_MULTIPLIER};
use std::error::Error;
use std::fmt;

/// Default number of candidate split boundaries per table. Log-spaced, so
/// the hot head is resolved row-by-row while the cold tail uses coarse
/// chunks — matching where the CDF actually bends.
pub const DEFAULT_CHUNKS_PER_TABLE: usize = 64;

/// Why a per-row plan could not be produced.
#[derive(Debug, Clone, PartialEq)]
pub enum RowShardError {
    /// The platform has no GPUs (or no host↔GPU link) — per-row sharding
    /// targets accelerated systems, like the per-table solvers.
    NoGpus,
    /// The platform has no SCM/NVMe tier attached
    /// ([`Platform::with_scm`]).
    NoScm,
    /// The cold tail does not fit the SCM tier.
    ScmOverflow {
        /// Bytes the plan wanted to spill.
        needed: u64,
        /// Bytes the SCM device offers.
        capacity: u64,
    },
}

impl fmt::Display for RowShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowShardError::NoGpus => write!(f, "per-row sharding needs GPUs and a host-GPU link"),
            RowShardError::NoScm => write!(
                f,
                "per-row sharding needs an SCM/NVMe tier (Platform::with_scm)"
            ),
            RowShardError::ScmOverflow { needed, capacity } => write!(
                f,
                "cold tail ({}) exceeds SCM capacity ({})",
                Bytes::new(*needed),
                Bytes::new(*capacity)
            ),
        }
    }
}

impl Error for RowShardError {}

/// One table's row-range split across the three-tier hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowSplit {
    /// Distinct-table index in the model config.
    pub table: usize,
    /// Total rows in the table.
    pub rows: u64,
    /// Most popular `hot_rows` ranks live in GPU HBM.
    pub hot_rows: u64,
    /// The next `warm_rows` ranks live in host DDR.
    pub warm_rows: u64,
    /// Fraction of the table's lookup mass served by the hot slice.
    pub hot_mass: f64,
    /// Fraction of the table's lookup mass served by the warm slice.
    pub warm_mass: f64,
}

impl RowSplit {
    /// Rows in the SCM cold tail.
    pub fn cold_rows(&self) -> u64 {
        self.rows - self.hot_rows - self.warm_rows
    }

    /// Fraction of the table's lookup mass served from SCM.
    pub fn cold_mass(&self) -> f64 {
        (1.0 - self.hot_mass - self.warm_mass).max(0.0)
    }
}

/// A per-row (or per-table baseline) placement over the HBM / host DDR /
/// SCM hierarchy, with its hit-rate-weighted access cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RowShardPlan {
    solver: String,
    splits: Vec<RowSplit>,
    cost: Duration,
    batch: u64,
    hbm_bytes: u64,
    host_bytes: u64,
    scm_bytes: u64,
    fell_back: bool,
}

impl RowShardPlan {
    /// Which solver produced the plan (`"per-row"` or `"per-table"`).
    pub fn solver(&self) -> &str {
        &self.solver
    }

    /// The per-table row splits, in table order.
    pub fn splits(&self) -> &[RowSplit] {
        &self.splits
    }

    /// Hit-rate-weighted embedding access cost per training iteration.
    pub fn cost(&self) -> Duration {
        self.cost
    }

    /// Batch size the plan was priced at.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Table bytes per tier: `(hbm, host, scm)`, optimizer state included.
    pub fn bytes_per_tier(&self) -> (u64, u64, u64) {
        (self.hbm_bytes, self.host_bytes, self.scm_bytes)
    }

    /// Whether the per-row solver fell back to the per-table split
    /// (possible only when chunk rounding erased its advantage).
    pub fn fell_back(&self) -> bool {
        self.fell_back
    }

    /// Fraction of all lookup traffic served from HBM.
    pub fn hbm_traffic_share(&self, config: &ModelConfig, batch: u64) -> f64 {
        let demands = table_demands(config, ADAGRAD_STATE_MULTIPLIER);
        let mut hot = 0.0f64;
        let mut total = 0.0f64;
        // detsan: reduction-order — fixed table order at every thread count.
        for split in &self.splits {
            let gather = demands[split.table].gather_bytes_per_example as f64 * batch as f64;
            hot += split.hot_mass * gather;
            total += gather;
        }
        if total > 0.0 {
            hot / total
        } else {
            0.0
        }
    }

    /// Human-readable summary: solver, cost, tier bytes, then the largest
    /// splits.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "solver: {}{}\npredicted embedding access time: {:.3} ms/iteration (batch {})\n\
             bytes per tier: HBM {}, host {}, SCM {}\n",
            self.solver,
            if self.fell_back {
                " (fell back to per-table split)"
            } else {
                ""
            },
            self.cost.as_secs() * 1e3,
            self.batch,
            Bytes::new(self.hbm_bytes),
            Bytes::new(self.host_bytes),
            Bytes::new(self.scm_bytes),
        );
        let mut by_size: Vec<&RowSplit> = self.splits.iter().collect();
        by_size.sort_by(|a, b| b.rows.cmp(&a.rows).then(a.table.cmp(&b.table)));
        out.push_str("table     rows       hot(HBM)   warm(DDR)  cold(SCM)  hot traffic\n");
        const SHOWN: usize = 12;
        for split in by_size.iter().take(SHOWN) {
            out.push_str(&format!(
                "{:<9} {:<10} {:<10} {:<10} {:<10} {:.1}%\n",
                split.table,
                split.rows,
                split.hot_rows,
                split.warm_rows,
                split.cold_rows(),
                split.hot_mass * 100.0
            ));
        }
        if by_size.len() > SHOWN {
            out.push_str(&format!("… and {} more tables\n", by_size.len() - SHOWN));
        }
        out
    }
}

/// Per-tier access rates for one table: the cost of serving the table's
/// *entire* per-iteration traffic from each tier. A row range holding
/// fraction `m` of the lookup mass costs `m × rate`.
#[derive(Debug, Clone, Copy)]
struct TierRates {
    hbm: f64,
    ddr: f64,
    scm: f64,
}

/// One candidate row range `(lo, hi]` of a table.
#[derive(Debug, Clone, Copy)]
struct Chunk {
    hi: u64,
    mass: f64,
    bytes: u64,
}

/// Per-table solver state during the greedy fill.
struct TableState {
    table: usize,
    rows: u64,
    rates: TierRates,
    chunks: Vec<Chunk>,
    cdf: ZipfCdf,
}

/// Splits every embedding table into hot/warm/cold row ranges from the
/// Zipf access CDF, greedily filling HBM then host DDR by benefit per
/// byte. Deterministic pure function of its inputs at any thread count.
#[derive(Debug, Clone, Copy)]
pub struct RowShardSolver {
    /// Candidate split boundaries per table (log-spaced).
    pub chunks_per_table: usize,
}

impl Default for RowShardSolver {
    fn default() -> Self {
        Self {
            chunks_per_table: DEFAULT_CHUNKS_PER_TABLE,
        }
    }
}

impl RowShardSolver {
    /// Solves for a per-row plan: hot slices in HBM under `hbm_budget`
    /// aggregate bytes, warm in host DDR (up to the host's full capacity),
    /// cold tail in SCM. Lookup skew is `zipf_exponent`, the generator's
    /// row-popularity exponent.
    ///
    /// # Errors
    ///
    /// [`RowShardError::NoGpus`] / [`RowShardError::NoScm`] when the
    /// platform lacks a tier, [`RowShardError::ScmOverflow`] when the cold
    /// tail exceeds the SCM device.
    pub fn solve(
        &self,
        config: &ModelConfig,
        platform: &Platform,
        batch: u64,
        zipf_exponent: f64,
        hbm_budget: Bytes,
    ) -> Result<RowShardPlan, RowShardError> {
        let ddr = platform.host().memory().capacity();
        self.solve_with_caps(config, platform, batch, zipf_exponent, hbm_budget, ddr)
    }

    /// [`RowShardSolver::solve`] with an explicit DDR byte budget — the
    /// tier-capacity sweeps shrink the warm tier below the host's physical
    /// capacity (DDR is shared with readers, activations and the OS) so
    /// the cold tail genuinely lands on SCM.
    ///
    /// # Errors
    ///
    /// Same conditions as [`RowShardSolver::solve`].
    pub fn solve_with_caps(
        &self,
        config: &ModelConfig,
        platform: &Platform,
        batch: u64,
        zipf_exponent: f64,
        hbm_budget: Bytes,
        ddr_budget: Bytes,
    ) -> Result<RowShardPlan, RowShardError> {
        let tables = table_states(
            config,
            platform,
            batch,
            zipf_exponent,
            self.chunks_per_table,
        )?;
        let host_cap = ddr_budget
            .as_u64()
            .min(platform.host().memory().capacity().as_u64());
        let scm_cap = scm_capacity(platform)?;

        // Stage 1: fill the HBM budget with the highest-density chunks.
        // Within a table the CDF is concave and the rates constant, so
        // densities fall with rank and the global order visits each
        // table's chunks front to back; the next-chunk counters enforce
        // contiguity defensively anyway.
        let hot_taken = fill_stage(
            &tables,
            &vec![0usize; tables.len()],
            hbm_budget.as_u64(),
            |t| t.rates.scm - t.rates.hbm,
        );
        // Stage 2: fill host DDR with what SCM would serve slowest.
        let warm_taken = fill_stage(&tables, &hot_taken, host_cap, |t| t.rates.scm - t.rates.ddr);

        let per_row = assemble_plan("per-row", &tables, &hot_taken, &warm_taken, batch, scm_cap)?;
        let per_table = per_table_plan_with_caps(
            config,
            platform,
            batch,
            zipf_exponent,
            hbm_budget,
            ddr_budget,
        )?;

        // Never-worse guarantee: chunk rounding is the only way the
        // whole-table baseline can win; adopt its split when it does.
        let plan = if per_table.cost.as_secs() < per_row.cost.as_secs() - 1e-15 {
            RowShardPlan {
                solver: "per-row".into(),
                fell_back: true,
                ..per_table
            }
        } else {
            per_row
        };

        if recsim_detsan::enabled() {
            let mut d = recsim_detsan::StateDigest::new();
            d.write_str(&plan.solver);
            d.write_u64(plan.batch);
            d.write_u64(hbm_budget.as_u64());
            d.write_usize(plan.splits.len());
            for split in &plan.splits {
                d.write_usize(split.table);
                d.write_u64(split.rows);
                d.write_u64(split.hot_rows);
                d.write_u64(split.warm_rows);
            }
            recsim_detsan::record("shard/rowsplit", d.finish());
        }
        Ok(plan)
    }
}

/// The whole-table baseline on the same rates and capacities: each table
/// goes entirely to one tier, greedily by benefit per byte — exactly what
/// the per-table solvers do, priced with the row-shard cost model so the
/// two plans are comparable.
///
/// # Errors
///
/// Same conditions as [`RowShardSolver::solve`].
pub fn per_table_plan(
    config: &ModelConfig,
    platform: &Platform,
    batch: u64,
    zipf_exponent: f64,
    hbm_budget: Bytes,
) -> Result<RowShardPlan, RowShardError> {
    let ddr = platform.host().memory().capacity();
    per_table_plan_with_caps(config, platform, batch, zipf_exponent, hbm_budget, ddr)
}

/// [`per_table_plan`] with an explicit DDR byte budget, mirroring
/// [`RowShardSolver::solve_with_caps`] so the comparison stays
/// like-for-like under shrunk warm tiers.
///
/// # Errors
///
/// Same conditions as [`RowShardSolver::solve`].
pub fn per_table_plan_with_caps(
    config: &ModelConfig,
    platform: &Platform,
    batch: u64,
    zipf_exponent: f64,
    hbm_budget: Bytes,
    ddr_budget: Bytes,
) -> Result<RowShardPlan, RowShardError> {
    let tables = table_states(config, platform, batch, zipf_exponent, 1)?;
    let host_cap = ddr_budget
        .as_u64()
        .min(platform.host().memory().capacity().as_u64());
    let scm_cap = scm_capacity(platform)?;

    let total_bytes = |t: &TableState| -> u64 { t.chunks.iter().map(|c| c.bytes).sum() };
    let mut tier = vec![MemoryTier::RemoteDram; tables.len()]; // placeholder = SCM
    let mut order: Vec<usize> = (0..tables.len()).collect();

    // HBM fill: benefit of the whole table over SCM, per byte.
    order.sort_by(|&a, &b| {
        let da = density(
            tables[a].rates.scm - tables[a].rates.hbm,
            total_bytes(&tables[a]),
        );
        let db = density(
            tables[b].rates.scm - tables[b].rates.hbm,
            total_bytes(&tables[b]),
        );
        db.total_cmp(&da).then(a.cmp(&b))
    });
    let mut hbm_left = hbm_budget.as_u64();
    for &i in &order {
        let bytes = total_bytes(&tables[i]);
        if tables[i].rates.scm - tables[i].rates.hbm > 0.0 && bytes <= hbm_left {
            tier[i] = MemoryTier::GpuHbm;
            hbm_left -= bytes;
        }
    }
    // DDR fill over the remainder.
    order.sort_by(|&a, &b| {
        let da = density(
            tables[a].rates.scm - tables[a].rates.ddr,
            total_bytes(&tables[a]),
        );
        let db = density(
            tables[b].rates.scm - tables[b].rates.ddr,
            total_bytes(&tables[b]),
        );
        db.total_cmp(&da).then(a.cmp(&b))
    });
    let mut host_left = host_cap;
    for &i in &order {
        if tier[i] != MemoryTier::RemoteDram {
            continue;
        }
        let bytes = total_bytes(&tables[i]);
        if tables[i].rates.scm - tables[i].rates.ddr > 0.0 && bytes <= host_left {
            tier[i] = MemoryTier::HostDram;
            host_left -= bytes;
        }
    }

    let hot_taken: Vec<usize> = tier
        .iter()
        .map(|t| usize::from(*t == MemoryTier::GpuHbm))
        .collect();
    let warm_taken: Vec<usize> = tier
        .iter()
        .map(|t| usize::from(*t != MemoryTier::RemoteDram))
        .collect();
    assemble_plan(
        "per-table",
        &tables,
        &hot_taken,
        &warm_taken,
        batch,
        scm_cap,
    )
}

fn density(gain: f64, bytes: u64) -> f64 {
    gain.max(0.0) / bytes.max(1) as f64
}

fn scm_capacity(platform: &Platform) -> Result<u64, RowShardError> {
    platform
        .scm()
        .map(|s| s.capacity().as_u64())
        .ok_or(RowShardError::NoScm)
}

/// Builds per-table solver state: CDF, tier rates and log-spaced chunks.
fn table_states(
    config: &ModelConfig,
    platform: &Platform,
    batch: u64,
    zipf_exponent: f64,
    chunks_per_table: usize,
) -> Result<Vec<TableState>, RowShardError> {
    assert!(
        zipf_exponent > 0.0 && zipf_exponent.is_finite(),
        "Zipf exponent must be positive"
    );
    assert!(chunks_per_table >= 1, "need at least one chunk per table");
    let hbm = platform
        .gpus()
        .first()
        .map(|g| *g.memory())
        .ok_or(RowShardError::NoGpus)?;
    let pcie = *platform.host_gpu_link().ok_or(RowShardError::NoGpus)?;
    let host = *platform.host().memory();
    let scm = *platform.scm().ok_or(RowShardError::NoScm)?;
    let row_bytes = config.row_bytes().max(1);

    Ok(table_demands(config, ADAGRAD_STATE_MULTIPLIER)
        .iter()
        .map(|demand| {
            let gather = Bytes::new(demand.gather_bytes_per_example.saturating_mul(batch));
            let pooled2 = Bytes::new(
                demand
                    .pooled_bytes_per_example
                    .saturating_mul(batch)
                    .saturating_mul(2),
            );
            let accesses = gather.as_u64() / row_bytes;
            let pcie_time = pcie.transfer_time(pooled2, 1).as_secs();
            let rates = TierRates {
                hbm: hbm.access_time(gather, AccessPattern::Random).as_secs(),
                ddr: host.access_time(gather, AccessPattern::Random).as_secs() + pcie_time,
                scm: scm.random_read_time(gather, accesses).as_secs() + pcie_time,
            };
            let rows = config.table_hash_size(demand.table).max(1);
            let cdf = ZipfCdf::new(rows, zipf_exponent);
            let chunks = chunk_table(&cdf, rows, demand.bytes, chunks_per_table);
            TableState {
                table: demand.table,
                rows,
                rates,
                chunks,
                cdf,
            }
        })
        .collect())
}

/// Log-spaced candidate boundaries: `round(rows^(i/n))`, deduplicated,
/// always ending at `rows`. Chunk bytes are exact proportional shares of
/// the table footprint (they sum to `table_bytes` by telescoping).
fn chunk_table(cdf: &ZipfCdf, rows: u64, table_bytes: u64, n: usize) -> Vec<Chunk> {
    let mut bounds: Vec<u64> = Vec::with_capacity(n);
    for i in 1..=n {
        let k = (rows as f64).powf(i as f64 / n as f64).round() as u64;
        let k = k.clamp(1, rows);
        if bounds.last() != Some(&k) {
            bounds.push(k);
        }
    }
    if bounds.last() != Some(&rows) {
        bounds.push(rows);
    }
    let share = |k: u64| -> u64 { (k as u128 * table_bytes as u128 / rows as u128) as u64 };
    let mut chunks = Vec::with_capacity(bounds.len());
    let mut lo = 0u64;
    for &hi in &bounds {
        chunks.push(Chunk {
            hi,
            mass: cdf.cdf(hi) - cdf.cdf(lo),
            bytes: share(hi) - share(lo),
        });
        lo = hi;
    }
    chunks
}

/// Greedily accepts chunks in descending benefit-per-byte order into a
/// tier with `budget` bytes, starting each table at `start[i]` (chunks
/// already placed in faster tiers). A table freezes at its first rejected
/// chunk so accepted ranges stay contiguous. Returns the per-table count
/// of chunks placed up to and including this tier.
fn fill_stage(
    tables: &[TableState],
    start: &[usize],
    budget: u64,
    gain: impl Fn(&TableState) -> f64,
) -> Vec<usize> {
    let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
    for (i, t) in tables.iter().enumerate() {
        let g = gain(t);
        for (c, chunk) in t.chunks.iter().enumerate().skip(start[i]) {
            candidates.push((chunk.mass * g.max(0.0) / chunk.bytes.max(1) as f64, i, c));
        }
    }
    candidates.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let mut taken = start.to_vec();
    let mut frozen = vec![false; tables.len()];
    let mut left = budget;
    for &(d, i, c) in &candidates {
        if frozen[i] || c != taken[i] || d <= 0.0 {
            continue;
        }
        let bytes = tables[i].chunks[c].bytes;
        if bytes <= left {
            taken[i] = c + 1;
            left -= bytes;
        } else {
            frozen[i] = true;
        }
    }
    taken
}

/// Folds accepted chunk counts into splits, bytes per tier and the
/// hit-rate-weighted cost; errors when the cold tail overflows SCM.
fn assemble_plan(
    solver: &str,
    tables: &[TableState],
    hot_taken: &[usize],
    warm_taken: &[usize],
    batch: u64,
    scm_cap: u64,
) -> Result<RowShardPlan, RowShardError> {
    let mut splits = Vec::with_capacity(tables.len());
    let (mut hbm_bytes, mut host_bytes, mut scm_bytes) = (0u64, 0u64, 0u64);
    let mut cost = 0.0f64;
    // detsan: reduction-order — fixed table order at every thread count.
    for (i, t) in tables.iter().enumerate() {
        let hot_rows = if hot_taken[i] > 0 {
            t.chunks[hot_taken[i] - 1].hi
        } else {
            0
        };
        let warm_hi = if warm_taken[i] > 0 {
            t.chunks[warm_taken[i] - 1].hi
        } else {
            0
        };
        let warm_rows = warm_hi.max(hot_rows) - hot_rows;
        let hot_mass = t.cdf.cdf(hot_rows);
        let warm_mass = t.cdf.cdf(hot_rows + warm_rows) - hot_mass;
        let cold_mass = (1.0 - hot_mass - warm_mass).max(0.0);
        cost += hot_mass * t.rates.hbm + warm_mass * t.rates.ddr + cold_mass * t.rates.scm;

        let hot_b: u64 = t.chunks[..hot_taken[i]].iter().map(|c| c.bytes).sum();
        let warm_b: u64 = t.chunks[hot_taken[i]..warm_taken[i]]
            .iter()
            .map(|c| c.bytes)
            .sum();
        let cold_b: u64 = t.chunks[warm_taken[i]..].iter().map(|c| c.bytes).sum();
        hbm_bytes += hot_b;
        host_bytes += warm_b;
        scm_bytes += cold_b;

        splits.push(RowSplit {
            table: t.table,
            rows: t.rows,
            hot_rows,
            warm_rows,
            hot_mass,
            warm_mass,
        });
    }
    if scm_bytes > scm_cap {
        return Err(RowShardError::ScmOverflow {
            needed: scm_bytes,
            capacity: scm_cap,
        });
    }
    Ok(RowShardPlan {
        solver: solver.into(),
        splits,
        cost: Duration::from_secs(cost),
        batch,
        hbm_bytes,
        host_bytes,
        scm_bytes,
        fell_back: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsim_data::production::{production_model, ProductionModelId};
    use recsim_hw::ScmDevice;

    fn platform() -> Platform {
        Platform::big_basin(Bytes::from_gib(32)).with_scm(ScmDevice::optane_pmem())
    }

    fn m1() -> ModelConfig {
        production_model(ProductionModelId::M1)
    }

    #[test]
    fn splits_partition_every_table() {
        let plan = RowShardSolver::default()
            .solve(&m1(), &platform(), 1600, 1.1, Bytes::from_gib(8))
            .expect("solvable");
        assert_eq!(plan.splits().len(), m1().num_tables());
        for split in plan.splits() {
            assert_eq!(
                split.hot_rows + split.warm_rows + split.cold_rows(),
                split.rows
            );
            assert!(split.hot_mass >= 0.0 && split.hot_mass <= 1.0);
        }
        let (hbm, host, scm) = plan.bytes_per_tier();
        let demands = table_demands(&m1(), ADAGRAD_STATE_MULTIPLIER);
        let total: u64 = demands.iter().map(|d| d.bytes).sum();
        assert_eq!(hbm + host + scm, total, "bytes are conserved exactly");
    }

    #[test]
    fn hbm_budget_is_respected() {
        for gib in [1u64, 4, 16] {
            let budget = Bytes::from_gib(gib);
            let plan = RowShardSolver::default()
                .solve(&m1(), &platform(), 1600, 1.1, budget)
                .expect("solvable");
            let (hbm, host, _) = plan.bytes_per_tier();
            assert!(hbm <= budget.as_u64(), "{hbm} > {}", budget.as_u64());
            assert!(host <= platform().host().memory().capacity().as_u64());
        }
    }

    #[test]
    fn per_row_never_loses_to_per_table() {
        for &(zipf, gib) in &[(0.8, 2u64), (1.1, 8), (1.4, 16)] {
            let budget = Bytes::from_gib(gib);
            let row = RowShardSolver::default()
                .solve(&m1(), &platform(), 1600, zipf, budget)
                .expect("solvable");
            let table = per_table_plan(&m1(), &platform(), 1600, zipf, budget).expect("solvable");
            assert!(
                row.cost().as_secs() <= table.cost().as_secs() + 1e-15,
                "zipf {zipf} budget {gib} GiB: per-row {} vs per-table {}",
                row.cost().as_secs(),
                table.cost().as_secs()
            );
        }
    }

    #[test]
    fn tight_budget_still_captures_most_traffic() {
        // 1 GiB of HBM is a tiny fraction of M1's footprint, yet the hot
        // slices should capture well over half the lookup traffic.
        let plan = RowShardSolver::default()
            .solve(&m1(), &platform(), 1600, 1.1, Bytes::from_gib(1))
            .expect("solvable");
        let share = plan.hbm_traffic_share(&m1(), 1600);
        let (hbm, _, _) = plan.bytes_per_tier();
        let total: u64 = table_demands(&m1(), ADAGRAD_STATE_MULTIPLIER)
            .iter()
            .map(|d| d.bytes)
            .sum();
        assert!(
            share > 0.5,
            "hot share {share} from {:.1}% of bytes",
            hbm as f64 / total as f64 * 100.0
        );
        assert!(hbm as f64 / (total as f64) < 0.05);
    }

    #[test]
    fn steeper_skew_shrinks_the_hot_slice_coverage_point() {
        // The crossover (rows needed for 90% coverage) moves left as the
        // exponent grows — the claim the experiment sweeps.
        let flat = ZipfCdf::new(10_000_000, 0.8).rows_for_coverage(0.9);
        let mid = ZipfCdf::new(10_000_000, 1.1).rows_for_coverage(0.9);
        let steep = ZipfCdf::new(10_000_000, 1.4).rows_for_coverage(0.9);
        assert!(flat > mid && mid > steep, "{flat} > {mid} > {steep}");
    }

    #[test]
    fn missing_tiers_are_reported() {
        let no_scm = Platform::big_basin(Bytes::from_gib(32));
        let err = RowShardSolver::default()
            .solve(&m1(), &no_scm, 1600, 1.1, Bytes::from_gib(8))
            .expect_err("no SCM tier");
        assert_eq!(err, RowShardError::NoScm);

        let cpu = Platform::dual_socket_cpu().with_scm(ScmDevice::nvme_flash());
        let err = RowShardSolver::default()
            .solve(&m1(), &cpu, 1600, 1.1, Bytes::from_gib(8))
            .expect_err("no GPUs");
        assert_eq!(err, RowShardError::NoGpus);
        assert!(err.to_string().contains("GPUs"));
    }

    #[test]
    fn scm_overflow_is_reported() {
        // A host with 1 GiB of DDR cannot absorb M1's ~80 GiB of tables,
        // so nearly everything spills — and a 1-byte SCM rejects it.
        use recsim_hw::memory::Memory;
        use recsim_hw::units::{Bandwidth, Duration as D, FlopRate};
        use recsim_hw::{ComputeDevice, DeviceKind, Link, PowerModel};
        let host = ComputeDevice::new(
            DeviceKind::Cpu,
            FlopRate::from_tflops(1.0),
            0.3,
            Memory::new(Bytes::from_gib(1), Bandwidth::from_gb_per_s(100.0), 0.25),
            D::from_micros(1.0),
        );
        let tiny = Platform::custom(
            "tiny-host",
            host,
            vec![recsim_hw::device::v100(Bytes::from_gib(32))],
            None,
            Some(Link::pcie3_x16()),
            Link::ethernet_25g(),
            PowerModel::cpu_server(),
        )
        .with_scm(ScmDevice::optane_pmem().with_capacity(Bytes::new(1)));
        let err = RowShardSolver::default()
            .solve(&m1(), &tiny, 1600, 1.1, Bytes::new(1024))
            .expect_err("1-byte SCM cannot hold the tail");
        assert!(matches!(err, RowShardError::ScmOverflow { .. }), "{err}");
    }

    #[test]
    fn describe_mentions_all_three_tiers() {
        let plan = RowShardSolver::default()
            .solve(&m1(), &platform(), 1600, 1.1, Bytes::from_gib(8))
            .expect("solvable");
        let text = plan.describe();
        assert!(text.contains("HBM") && text.contains("SCM"), "{text}");
        assert!(text.contains("per-row"));
    }
}
