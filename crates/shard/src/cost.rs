//! Closed-form per-table access-cost model over the platform's memory
//! hierarchy.
//!
//! The solvers need a cheap, total order on "how much does this table
//! suffer in each tier" without running the discrete-event simulator per
//! candidate. The model prices one training iteration's embedding traffic
//! for a single table in each tier, from the same hardware parameters the
//! simulator uses:
//!
//! ```text
//! cost(table, GPU HBM)     = gather / BW_hbm(random)
//! cost(table, host DRAM)   = gather / BW_host(random) + 2·pooled / BW_pcie
//! cost(table, remote DRAM) = gather / BW_ddr(random)  + 2·pooled / BW_nic
//! ```
//!
//! where `gather = batch × gather_bytes_per_example` (the raw rows touched,
//! a random-access pattern per the paper's §III.A) and `pooled = batch ×
//! pooled_bytes_per_example` (what must cross the interconnect to reach the
//! trainer, forward + backward). The absolute numbers are optimistic — the
//! simulator adds contention, staging hops and kernel overhead — but the
//! *ordering* of tables by `benefit-per-byte` is what the greedy and
//! packing solvers consume, and the refiner re-scores every accepted move
//! with the real simulator anyway.

use recsim_hw::units::{Bytes, Duration};
use recsim_hw::{AccessPattern, Link, Memory, Platform};
use recsim_placement::plan::PlacementError;
use recsim_placement::TableDemand;

/// One level of the placement memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryTier {
    /// A GPU's HBM (fastest, scarcest).
    GpuHbm,
    /// The trainer host's system DRAM, reached over PCIe.
    HostDram,
    /// A remote sparse parameter server's DRAM, reached over the NIC.
    RemoteDram,
}

impl MemoryTier {
    /// All tiers, fastest first — the fill order of the packing solvers.
    pub const ALL: [MemoryTier; 3] = [
        MemoryTier::GpuHbm,
        MemoryTier::HostDram,
        MemoryTier::RemoteDram,
    ];
}

/// Analytic access-cost model for one platform.
#[derive(Debug, Clone)]
pub struct CostModel {
    hbm: Memory,
    host: Memory,
    remote: Memory,
    pcie: Link,
    nic: Link,
}

impl CostModel {
    /// Builds the model from a platform's memory hierarchy.
    ///
    /// # Errors
    ///
    /// [`PlacementError::NoGpus`] when the platform has no GPUs or no
    /// host↔GPU link — auto-sharding targets accelerated systems.
    pub fn new(platform: &Platform) -> Result<CostModel, PlacementError> {
        let hbm = platform
            .gpus()
            .first()
            .map(|g| *g.memory())
            .ok_or(PlacementError::NoGpus)?;
        let pcie = *platform.host_gpu_link().ok_or(PlacementError::NoGpus)?;
        Ok(CostModel {
            hbm,
            host: *platform.host().memory(),
            remote: recsim_hw::memory::ddr4_dual_socket(),
            pcie,
            nic: *platform.network(),
        })
    }

    /// Predicted time to serve one iteration of `demand`'s embedding
    /// traffic from `tier` at the given batch size.
    pub fn access_cost(&self, demand: &TableDemand, tier: MemoryTier, batch: u64) -> Duration {
        let gather = Bytes::new(demand.gather_bytes_per_example.saturating_mul(batch));
        // Pooled outputs cross the interconnect twice: activations forward,
        // gradients backward.
        let pooled = Bytes::new(
            demand
                .pooled_bytes_per_example
                .saturating_mul(batch)
                .saturating_mul(2),
        );
        match tier {
            MemoryTier::GpuHbm => self.hbm.access_time(gather, AccessPattern::Random),
            MemoryTier::HostDram => {
                self.host.access_time(gather, AccessPattern::Random)
                    + self.pcie.transfer_time(pooled, 1)
            }
            MemoryTier::RemoteDram => {
                self.remote.access_time(gather, AccessPattern::Random)
                    + self.nic.transfer_time(pooled, 1)
            }
        }
    }

    /// Benefit-per-byte of promoting a table to HBM: how much iteration
    /// time one byte of this table's footprint buys back relative to the
    /// cheapest off-GPU tier. The greedy solver fills HBM in descending
    /// order of this density (hot small tables first — the paper's
    /// Figure 6 observation that access frequency does not correlate with
    /// size is exactly why this beats a bytes-only fill).
    pub fn hbm_density(&self, demand: &TableDemand, batch: u64) -> f64 {
        let gpu = self
            .access_cost(demand, MemoryTier::GpuHbm, batch)
            .as_secs();
        let host = self
            .access_cost(demand, MemoryTier::HostDram, batch)
            .as_secs();
        let remote = self
            .access_cost(demand, MemoryTier::RemoteDram, batch)
            .as_secs();
        (host.min(remote) - gpu).max(0.0) / demand.bytes.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsim_hw::units::Bytes as B;

    fn demand(bytes: u64, gather: u64) -> TableDemand {
        TableDemand {
            table: 0,
            bytes,
            gather_bytes_per_example: gather,
            pooled_bytes_per_example: 256,
        }
    }

    fn model() -> CostModel {
        CostModel::new(&Platform::big_basin(B::from_gib(32))).expect("big basin has GPUs")
    }

    #[test]
    fn hbm_is_cheapest_tier() {
        let m = model();
        let d = demand(1 << 30, 8192);
        let gpu = m.access_cost(&d, MemoryTier::GpuHbm, 1024);
        let host = m.access_cost(&d, MemoryTier::HostDram, 1024);
        let remote = m.access_cost(&d, MemoryTier::RemoteDram, 1024);
        assert!(gpu.as_secs() < host.as_secs());
        assert!(host.as_secs() < remote.as_secs());
    }

    #[test]
    fn hot_small_tables_have_highest_density() {
        let m = model();
        let hot_small = demand(1 << 20, 16_384);
        let cold_giant = demand(1 << 34, 256);
        assert!(m.hbm_density(&hot_small, 1024) > m.hbm_density(&cold_giant, 1024));
    }

    #[test]
    fn cpu_only_platform_is_rejected() {
        let err = CostModel::new(&Platform::dual_socket_cpu()).expect_err("no GPUs");
        assert_eq!(err, PlacementError::NoGpus);
    }
}
