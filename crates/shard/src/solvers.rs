//! The three placement solvers behind the [`Sharder`] trait.
//!
//! All three are deterministic serial searches: ties break on table index,
//! candidate order is fixed, and no thread-pool state leaks into the
//! result (`tests/determinism.rs` pins this at `RECSIM_THREADS=1/2/8`).

use crate::cost::{CostModel, MemoryTier};
use crate::{ShardError, ShardPlan, Sharder, MAX_REMOTE_SERVERS};
use recsim_data::schema::ModelConfig;
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_placement::partition::{pack_tiers, Tier};
use recsim_placement::plan::{gpu_table_capacity, table_demands, ADAGRAD_STATE_MULTIPLIER};
use recsim_placement::{Placement, PlacementError, PlacementStrategy, TableDemand, TableLocation};
use recsim_sim::{GpuTrainingSim, SimScratch};

/// Capacities of the three tiers on a platform, in solver form.
#[derive(Debug, Clone, Copy)]
struct TierCaps {
    gpus: usize,
    per_gpu: u64,
    host: u64,
    per_remote: u64,
}

impl TierCaps {
    fn of(platform: &Platform) -> Result<TierCaps, PlacementError> {
        if !platform.has_gpus() {
            return Err(PlacementError::NoGpus);
        }
        Ok(TierCaps {
            gpus: platform.gpus().len(),
            per_gpu: gpu_table_capacity(platform),
            host: platform.host().memory().capacity().as_u64(),
            per_remote: recsim_hw::memory::ddr4_dual_socket().capacity().as_u64(),
        })
    }
}

/// Wraps per-table locations into a [`Placement`] with recorded
/// capacities, so downstream `Validate` re-checks exactly what the solver
/// assumed. Auto plans reuse the `Hybrid` strategy tag — the simulator
/// derives all traffic from the per-table locations, the tag is metadata.
fn assemble(
    demands: &[TableDemand],
    locations: Vec<TableLocation>,
    platform: &Platform,
    caps: TierCaps,
) -> Placement {
    let assignments = demands
        .iter()
        .zip(locations)
        .map(|(d, loc)| d.assigned(loc))
        .collect();
    Placement::from_parts(
        PlacementStrategy::Hybrid,
        assignments,
        platform.gpus().len(),
        caps.per_gpu,
        caps.host,
        caps.per_remote,
    )
}

/// Density order: descending benefit-per-byte of HBM residency, ties on
/// table index.
fn density_order(cost: &CostModel, demands: &[TableDemand], batch: u64) -> Vec<usize> {
    let density: Vec<f64> = demands.iter().map(|d| cost.hbm_density(d, batch)).collect();
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|&a, &b| density[b].total_cmp(&density[a]).then(a.cmp(&b)));
    order
}

/// (a) Greedy cost-density fill: tables claim HBM in descending
/// benefit-per-byte; spilled tables go to whichever off-GPU tier the cost
/// model prices cheaper, capacity permitting.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySharder;

impl GreedySharder {
    /// The raw placement, without the simulator scoring pass — shared with
    /// [`RefineSharder`]'s seed set.
    pub(crate) fn placement(
        config: &ModelConfig,
        platform: &Platform,
        batch: u64,
    ) -> Result<Placement, ShardError> {
        let caps = TierCaps::of(platform)?;
        let cost = CostModel::new(platform)?;
        let demands = table_demands(config, ADAGRAD_STATE_MULTIPLIER);
        let order = density_order(&cost, &demands, batch);

        let mut gpu_loads = vec![0u64; caps.gpus];
        let mut host_load = 0u64;
        let mut remote_loads = [0u64; MAX_REMOTE_SERVERS];
        let mut locations = vec![TableLocation::HostMemory; demands.len()];
        for idx in order {
            let d = &demands[idx];
            let gpu_bin = gpu_loads
                .iter()
                .enumerate()
                .filter(|&(_, &l)| l + d.bytes <= caps.per_gpu)
                .min_by_key(|&(i, &l)| (l, i))
                .map(|(i, _)| i);
            if let Some(g) = gpu_bin {
                gpu_loads[g] += d.bytes;
                locations[idx] = TableLocation::Gpu(g);
                continue;
            }
            let host_cost = cost.access_cost(d, MemoryTier::HostDram, batch);
            let remote_cost = cost.access_cost(d, MemoryTier::RemoteDram, batch);
            let host_fits = host_load + d.bytes <= caps.host;
            let remote_bin = remote_loads
                .iter()
                .enumerate()
                .filter(|&(_, &l)| l + d.bytes <= caps.per_remote)
                .min_by_key(|&(i, &l)| (l, i))
                .map(|(i, _)| i);
            let prefer_host = host_cost.as_secs() <= remote_cost.as_secs();
            match (host_fits, remote_bin) {
                (true, _) if prefer_host => {
                    host_load += d.bytes;
                }
                (_, Some(s)) => {
                    remote_loads[s] += d.bytes;
                    locations[idx] = TableLocation::Remote(s);
                }
                (true, None) => {
                    host_load += d.bytes;
                }
                (false, None) => {
                    return Err(ShardError::Placement(PlacementError::Unplaceable {
                        item: idx,
                        needed: Bytes::new(d.bytes),
                        available: Bytes::new(caps.host.max(caps.per_remote)),
                    }));
                }
            }
        }
        Ok(assemble(&demands, locations, platform, caps))
    }
}

impl Sharder for GreedySharder {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn shard(
        &self,
        config: &ModelConfig,
        platform: &Platform,
        batch: u64,
    ) -> Result<ShardPlan, ShardError> {
        let placement = Self::placement(config, platform, batch)?;
        ShardPlan::new(self.name(), config, platform, placement, batch)
    }
}

/// (b) Multi-constraint bin packing over
/// [`recsim_placement::partition::pack_tiers`]: tiers declared fastest
/// first (GPU bins, host, remote servers), items visited hottest-first, so
/// each table lands in the fastest tier with room.
#[derive(Debug, Clone, Copy, Default)]
pub struct PackSharder;

impl PackSharder {
    /// The raw placement, without the simulator scoring pass.
    pub(crate) fn placement(
        config: &ModelConfig,
        platform: &Platform,
        batch: u64,
    ) -> Result<Placement, ShardError> {
        let caps = TierCaps::of(platform)?;
        let cost = CostModel::new(platform)?;
        let demands = table_demands(config, ADAGRAD_STATE_MULTIPLIER);
        let order = density_order(&cost, &demands, batch);
        let weights: Vec<u64> = demands.iter().map(|d| d.bytes).collect();
        let tiers = [
            Tier {
                bins: caps.gpus,
                capacity: caps.per_gpu,
            },
            Tier {
                bins: 1,
                capacity: caps.host,
            },
            Tier {
                bins: MAX_REMOTE_SERVERS,
                capacity: caps.per_remote,
            },
        ];
        let packed = pack_tiers(&weights, &order, &tiers)?;
        let locations = packed
            .into_iter()
            .map(|(tier, bin)| match tier {
                0 => TableLocation::Gpu(bin),
                1 => TableLocation::HostMemory,
                _ => TableLocation::Remote(bin),
            })
            .collect();
        Ok(assemble(&demands, locations, platform, caps))
    }
}

impl Sharder for PackSharder {
    fn name(&self) -> &'static str {
        "pack"
    }

    fn shard(
        &self,
        config: &ModelConfig,
        platform: &Platform,
        batch: u64,
    ) -> Result<ShardPlan, ShardError> {
        let placement = Self::placement(config, platform, batch)?;
        ShardPlan::new(self.name(), config, platform, placement, batch)
    }
}

/// (c) Local-search refiner with simulated evaluation.
///
/// Seeds from every feasible static Figure-8 plan plus the greedy and pack
/// solutions, keeps the simulator-best, then walks single-table moves
/// (re-tier, or rebalance across GPUs), accepting only moves the *real*
/// simulator scores strictly faster. Because the seed set contains every
/// static strategy and acceptance is monotone, the result is never slower
/// than the best static Figure-8 strategy on the same inputs.
#[derive(Debug, Clone, Copy)]
pub struct RefineSharder {
    /// Maximum simulator evaluations spent in the local-search phase
    /// (seeding evaluations are not counted).
    pub budget: usize,
}

impl Default for RefineSharder {
    fn default() -> Self {
        RefineSharder { budget: 16 }
    }
}

impl RefineSharder {
    /// A refiner with a custom local-search evaluation budget.
    pub fn with_budget(budget: usize) -> Self {
        RefineSharder { budget }
    }

    /// Moves evaluated with the simulator per accepted step.
    const PROPOSALS_PER_ROUND: usize = 4;
}

/// Tier of a location, for the analytic move-ranking.
fn tier_of(location: TableLocation) -> MemoryTier {
    match location {
        TableLocation::Replicated
        | TableLocation::Gpu(_)
        | TableLocation::RowWiseSharded { .. } => MemoryTier::GpuHbm,
        TableLocation::HostMemory => MemoryTier::HostDram,
        TableLocation::Remote(_) => MemoryTier::RemoteDram,
    }
}

/// Per-location byte loads of a candidate, mirroring
/// [`Placement::gpu_loads`]-style accounting on the solver's working set.
fn loads_of(
    demands: &[TableDemand],
    locations: &[TableLocation],
    caps: TierCaps,
) -> (Vec<u64>, u64, Vec<u64>) {
    let mut gpu = vec![0u64; caps.gpus];
    let mut host = 0u64;
    let mut remote = vec![0u64; MAX_REMOTE_SERVERS];
    for (d, &loc) in demands.iter().zip(locations) {
        match loc {
            TableLocation::Replicated => {
                for l in &mut gpu {
                    *l += d.bytes;
                }
            }
            TableLocation::Gpu(g) => {
                if let Some(l) = gpu.get_mut(g) {
                    *l += d.bytes;
                }
            }
            TableLocation::RowWiseSharded { num_gpus } => {
                let share = d.bytes / num_gpus.max(1) as u64;
                for l in gpu.iter_mut().take(num_gpus) {
                    *l += share;
                }
            }
            TableLocation::HostMemory => host += d.bytes,
            TableLocation::Remote(s) => {
                if let Some(l) = remote.get_mut(s) {
                    *l += d.bytes;
                }
            }
        }
    }
    (gpu, host, remote)
}

impl Sharder for RefineSharder {
    fn name(&self) -> &'static str {
        "refine"
    }

    fn shard(
        &self,
        config: &ModelConfig,
        platform: &Platform,
        batch: u64,
    ) -> Result<ShardPlan, ShardError> {
        let caps = TierCaps::of(platform)?;
        let cost = CostModel::new(platform)?;
        let demands = table_demands(config, ADAGRAD_STATE_MULTIPLIER);
        let mut scratch = SimScratch::new();
        let mut evaluate = |placement: &Placement| -> Result<f64, ShardError> {
            let sim = GpuTrainingSim::with_placement(config, platform, placement.clone(), batch)?;
            Ok(sim.run_in(&mut scratch).iteration_time().as_secs())
        };

        // ---- Seed: every feasible static plan + the other two solvers.
        let mut candidates: Vec<Placement> = Vec::new();
        for strategy in PlacementStrategy::figure8_lineup() {
            if let Ok(p) = Placement::plan(config, platform, strategy, ADAGRAD_STATE_MULTIPLIER) {
                candidates.push(p);
            }
        }
        match GreedySharder::placement(config, platform, batch) {
            Ok(p) => candidates.push(p),
            Err(e) if candidates.is_empty() => return Err(e),
            Err(_) => {}
        }
        if let Ok(p) = PackSharder::placement(config, platform, batch) {
            candidates.push(p);
        }

        let mut best: Option<(f64, Placement)> = None;
        for p in candidates {
            let Ok(t) = evaluate(&p) else { continue };
            let better = best.as_ref().is_none_or(|(bt, _)| t < *bt);
            if better {
                best = Some((t, p));
            }
        }
        let Some((mut best_time, seed)) = best else {
            // Every candidate failed evaluation; surface the greedy error.
            return GreedySharder.shard(config, platform, batch);
        };

        // ---- Local search over the seed's per-table locations.
        let mut locations: Vec<TableLocation> =
            seed.assignments().iter().map(|a| a.location).collect();
        let mut spent = 0usize;
        loop {
            if spent >= self.budget {
                break;
            }
            let (gpu_loads, host_load, remote_loads) = loads_of(&demands, &locations, caps);
            // Rank candidate single-table moves by analytic improvement.
            let mut proposals: Vec<(f64, usize, TableLocation)> = Vec::new();
            for (idx, d) in demands.iter().enumerate() {
                let current = locations[idx];
                let here = cost.access_cost(d, tier_of(current), batch).as_secs();
                // Move to the least-loaded GPU with room.
                if tier_of(current) != MemoryTier::GpuHbm {
                    if let Some((g, _)) = gpu_loads
                        .iter()
                        .enumerate()
                        .filter(|&(_, &l)| l + d.bytes <= caps.per_gpu)
                        .min_by_key(|&(i, &l)| (l, i))
                    {
                        let there = cost.access_cost(d, MemoryTier::GpuHbm, batch).as_secs();
                        proposals.push((here - there, idx, TableLocation::Gpu(g)));
                    }
                }
                // Move to host DRAM.
                if current != TableLocation::HostMemory && host_load + d.bytes <= caps.host {
                    let there = cost.access_cost(d, MemoryTier::HostDram, batch).as_secs();
                    proposals.push((here - there, idx, TableLocation::HostMemory));
                }
                // Move to the least-loaded remote server with room.
                if tier_of(current) != MemoryTier::RemoteDram {
                    if let Some((s, _)) = remote_loads
                        .iter()
                        .enumerate()
                        .filter(|&(_, &l)| l + d.bytes <= caps.per_remote)
                        .min_by_key(|&(i, &l)| (l, i))
                    {
                        let there = cost.access_cost(d, MemoryTier::RemoteDram, batch).as_secs();
                        proposals.push((here - there, idx, TableLocation::Remote(s)));
                    }
                }
            }
            proposals.retain(|&(delta, _, _)| delta > 0.0);
            proposals.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            // A GPU-rebalance move (largest table off the fullest GPU onto
            // the emptiest) is analytically neutral but often helps the
            // simulator; keep one in the evaluation slate.
            if let Some(rebalance) = rebalance_move(&demands, &locations, &gpu_loads, caps) {
                proposals.truncate(Self::PROPOSALS_PER_ROUND.saturating_sub(1));
                proposals.push((0.0, rebalance.0, rebalance.1));
            } else {
                proposals.truncate(Self::PROPOSALS_PER_ROUND);
            }
            if proposals.is_empty() {
                break;
            }

            let mut accepted: Option<(f64, usize, TableLocation)> = None;
            for &(_, idx, target) in &proposals {
                if spent >= self.budget {
                    break;
                }
                let prev = locations[idx];
                locations[idx] = target;
                let trial = assemble(&demands, locations.clone(), platform, caps);
                locations[idx] = prev;
                spent += 1;
                let Ok(t) = evaluate(&trial) else { continue };
                if t < best_time && accepted.as_ref().is_none_or(|(at, _, _)| t < *at) {
                    accepted = Some((t, idx, target));
                }
            }
            match accepted {
                Some((t, idx, target)) => {
                    best_time = t;
                    locations[idx] = target;
                }
                None => break,
            }
        }

        let refined = assemble(&demands, locations, platform, caps);
        // The refined candidate can only have tied or beaten the seed, but
        // guard against drift: fall back to the seed if scoring regressed.
        let plan = ShardPlan::new(self.name(), config, platform, refined, batch)?;
        if plan.iteration_time().as_secs() <= best_time + 1e-12 {
            Ok(plan)
        } else {
            ShardPlan::new(self.name(), config, platform, seed, batch)
        }
    }
}

/// The GPU-rebalance proposal: move the largest table on the most-loaded
/// GPU to the least-loaded GPU, when that narrows the spread and fits.
fn rebalance_move(
    demands: &[TableDemand],
    locations: &[TableLocation],
    gpu_loads: &[u64],
    caps: TierCaps,
) -> Option<(usize, TableLocation)> {
    let (max_g, &max_load) = gpu_loads
        .iter()
        .enumerate()
        .max_by_key(|&(i, &l)| (l, usize::MAX - i))?;
    let (min_g, &min_load) = gpu_loads.iter().enumerate().min_by_key(|&(i, &l)| (l, i))?;
    if max_g == min_g || max_load == 0 {
        return None;
    }
    let candidate = demands
        .iter()
        .enumerate()
        .filter(|&(i, d)| {
            locations[i] == TableLocation::Gpu(max_g)
                && min_load + d.bytes <= caps.per_gpu
                && min_load + d.bytes < max_load
        })
        .max_by_key(|&(i, d)| (d.bytes, usize::MAX - i))?;
    Some((candidate.0, TableLocation::Gpu(min_g)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsim_data::production::{production_model, ProductionModelId};
    use recsim_verify::Validate;

    fn big_basin() -> Platform {
        Platform::big_basin(Bytes::from_gib(32))
    }

    #[test]
    fn greedy_places_all_m1_tables() {
        let m1 = production_model(ProductionModelId::M1);
        let plan = GreedySharder
            .shard(&m1, &big_basin(), 1600)
            .expect("m1 fits");
        assert_eq!(plan.placement().assignments().len(), m1.num_tables());
        assert!(plan.placement().check().is_ok());
    }

    #[test]
    fn pack_fills_fastest_tier_first() {
        let m1 = production_model(ProductionModelId::M1);
        let plan = PackSharder.shard(&m1, &big_basin(), 1600).expect("m1 fits");
        // M1 (~41 GiB with state) fits the 8×32 GiB HBM pool: everything
        // should land on GPUs, nothing on host or remote.
        let (gpu, host, remote) = plan.bytes_per_tier();
        assert!(gpu > 0);
        assert_eq!(host + remote, 0, "no spill for a fitting model");
    }

    #[test]
    fn refine_beats_or_ties_best_static_on_m3() {
        // M3 is the paper's hard case: does not fit Big Basin HBM.
        let m3 = production_model(ProductionModelId::M3);
        let bb = big_basin();
        let auto = RefineSharder::with_budget(8)
            .shard(&m3, &bb, 800)
            .expect("m3 shards");
        let best = crate::best_static(&m3, &bb, 800).expect("static baseline exists");
        assert!(
            auto.iteration_time().as_secs() <= best.iteration_time().as_secs() + 1e-12,
            "refine {} vs static {}",
            auto.iteration_time().as_secs(),
            best.iteration_time().as_secs()
        );
    }

    #[test]
    fn cpu_only_platform_is_rejected() {
        let m1 = production_model(ProductionModelId::M1);
        for solver in [
            &GreedySharder as &dyn Sharder,
            &PackSharder,
            &RefineSharder::default(),
        ] {
            let err = solver
                .shard(&m1, &Platform::dual_socket_cpu(), 1600)
                .expect_err("no GPUs");
            assert!(matches!(err, ShardError::Placement(PlacementError::NoGpus)));
        }
    }

    #[test]
    fn solvers_are_idempotent() {
        let m2 = production_model(ProductionModelId::M2);
        let bb = big_basin();
        for solver in [&GreedySharder as &dyn Sharder, &PackSharder] {
            let a = solver.shard(&m2, &bb, 3200).expect("m2 fits");
            let b = solver.shard(&m2, &bb, 3200).expect("m2 fits");
            assert_eq!(a, b, "{} must be deterministic", solver.name());
        }
    }
}
