//! Automatic embedding-table placement: searches for a [`Placement`] that
//! minimizes predicted iteration time under hard capacity constraints.
//!
//! Section IV.B.1 of the paper frames table placement as *the* decision
//! that determines DLRM training throughput on accelerated systems, but
//! `recsim-placement` only replays the four static Figure-8 strategies.
//! Follow-up work (RecShard, MTrainS) shows that statistics-aware placement
//! across the memory hierarchy beats any fixed strategy: hot small tables
//! earn their HBM bytes, cold giants are better left in host or remote
//! DRAM. This crate closes the loop:
//!
//! * per-table demands come from [`recsim_placement::table_demands`]
//!   (row counts × row bytes × optimizer state; lookups from the model's
//!   Figure 6–7 distributions),
//! * the memory hierarchy (HBM capacity/bandwidth, host DRAM, PCIe, NIC)
//!   comes from [`recsim_hw::Platform`],
//! * a closed-form [`cost::CostModel`] ranks tables by benefit-per-byte,
//! * and candidate plans are scored with the *real* simulator
//!   ([`recsim_sim::GpuTrainingSim`]), so "predicted iteration time" is the
//!   same number every experiment reports.
//!
//! Three solvers implement the [`Sharder`] trait: [`GreedySharder`]
//! (cost-density fill), [`PackSharder`] (multi-tier bin packing via
//! [`recsim_placement::partition::pack_tiers`]) and [`RefineSharder`]
//! (seeded local search with simulated evaluation; its result is never
//! worse than the best static Figure-8 strategy by construction).
//!
//! Beyond whole tables, [`rows`] splits each table into hot/warm/cold
//! *row ranges* across HBM / host DDR / SCM from the Zipf access CDF
//! ([`RowShardSolver`]), with [`per_table_plan`] as the whole-table
//! baseline on the same cost model.
//!
//! # Example
//!
//! ```
//! use recsim_shard::{RefineSharder, Sharder};
//! use recsim_data::production::{production_model, ProductionModelId};
//! use recsim_hw::{units::Bytes, Platform};
//!
//! let m1 = production_model(ProductionModelId::M1);
//! let bb = Platform::big_basin(Bytes::from_gib(32));
//! let plan = RefineSharder::default().shard(&m1, &bb, 1600)?;
//! assert!(plan.throughput() > 0.0);
//! # Ok::<(), recsim_shard::ShardError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod rows;
pub mod solvers;

pub use cost::{CostModel, MemoryTier};
pub use rows::{
    per_table_plan, per_table_plan_with_caps, RowShardError, RowShardPlan, RowShardSolver, RowSplit,
};
pub use solvers::{GreedySharder, PackSharder, RefineSharder};

use recsim_data::schema::ModelConfig;
use recsim_hw::units::{Bytes, Duration};
use recsim_hw::Platform;
use recsim_placement::plan::ADAGRAD_STATE_MULTIPLIER;
use recsim_placement::{Placement, PlacementError, PlacementStrategy};
use recsim_sim::{GpuTrainingSim, SimError, SimReport};
use recsim_verify::{Validate, ValidationError};
use std::error::Error;
use std::fmt;

/// Maximum remote sparse parameter servers a solver may recruit — the
/// paper's M3 production setup uses 8.
pub const MAX_REMOTE_SERVERS: usize = 8;

/// Why a sharding plan could not be produced.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardError {
    /// No placement of the tables satisfies the capacity constraints
    /// (carries the last packing failure).
    Placement(PlacementError),
    /// The candidate placed, but the simulator rejected the setup.
    Sim(SimError),
    /// The model config, platform, or a produced plan failed validation
    /// (RV02x diagnostics).
    Invalid(ValidationError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Placement(e) => write!(f, "no feasible placement: {e}"),
            ShardError::Sim(e) => write!(f, "plan evaluation failed: {e}"),
            ShardError::Invalid(e) => write!(f, "invalid sharding input: {e}"),
        }
    }
}

impl Error for ShardError {}

impl From<PlacementError> for ShardError {
    fn from(e: PlacementError) -> Self {
        Self::Placement(e)
    }
}

impl From<SimError> for ShardError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::Placement(p) => Self::Placement(p),
            other => Self::Sim(other),
        }
    }
}

impl From<ValidationError> for ShardError {
    fn from(e: ValidationError) -> Self {
        Self::Invalid(e)
    }
}

/// A placement search algorithm.
///
/// Implementations must be deterministic pure functions of their inputs:
/// the same `(config, platform, batch)` triple yields the same plan at any
/// thread count (enforced by `tests/determinism.rs`).
pub trait Sharder {
    /// Short solver name (`"greedy"`, `"pack"`, `"refine"`).
    fn name(&self) -> &'static str;

    /// Searches for a placement of `config`'s tables on `platform`
    /// minimizing predicted iteration time at the given batch size.
    ///
    /// # Errors
    ///
    /// [`ShardError::Placement`] when no capacity-feasible placement
    /// exists (including CPU-only platforms), [`ShardError::Invalid`] when
    /// the inputs fail validation.
    fn shard(
        &self,
        config: &ModelConfig,
        platform: &Platform,
        batch: u64,
    ) -> Result<ShardPlan, ShardError>;
}

/// A validated, simulator-scored placement plan — what every [`Sharder`]
/// returns and what the `autoshard` experiment compares.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    solver: String,
    placement: Placement,
    report: SimReport,
    batch: u64,
}

impl ShardPlan {
    /// Validates `placement` (RV021/RV022/RV023) and scores it with
    /// [`GpuTrainingSim`]; the resulting plan carries the full
    /// [`SimReport`].
    ///
    /// # Errors
    ///
    /// [`ShardError::Invalid`] when the placement (or model/platform)
    /// fails validation, [`ShardError::Sim`] when the simulator rejects
    /// the setup.
    pub fn new(
        solver: impl Into<String>,
        config: &ModelConfig,
        platform: &Platform,
        placement: Placement,
        batch: u64,
    ) -> Result<ShardPlan, ShardError> {
        placement.check()?;
        let sim = GpuTrainingSim::with_placement(config, platform, placement, batch)?;
        let report = sim.run();
        Ok(ShardPlan {
            solver: solver.into(),
            placement: sim.placement().clone(),
            report,
            batch,
        })
    }

    /// Which solver (or static strategy label) produced the plan.
    pub fn solver(&self) -> &str {
        &self.solver
    }

    /// The concrete placement — plugs directly into
    /// [`GpuTrainingSim::with_placement`].
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The simulator's full report for this plan.
    pub fn report(&self) -> &SimReport {
        &self.report
    }

    /// Batch size the plan was scored at.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Predicted steady-state iteration time.
    pub fn iteration_time(&self) -> Duration {
        self.report.iteration_time()
    }

    /// Predicted examples/second.
    pub fn throughput(&self) -> f64 {
        self.report.throughput()
    }

    /// Table bytes per memory tier: `(gpu, host, remote)`.
    pub fn bytes_per_tier(&self) -> (u64, u64, u64) {
        let gpu: u64 = self.placement.gpu_loads().iter().sum();
        let host = self.placement.host_bytes();
        let remote: u64 = self.placement.remote_loads().iter().sum();
        (gpu, host, remote)
    }

    /// GPU load imbalance (`max/mean`) of the plan.
    pub fn gpu_imbalance(&self) -> f64 {
        self.placement.gpu_imbalance()
    }

    /// Human-readable summary: solver, predicted performance, tier bytes,
    /// then the placement table.
    pub fn describe(&self) -> String {
        let (gpu, host, remote) = self.bytes_per_tier();
        let mut out = format!(
            "solver: {}\npredicted iteration time: {:.3} ms ({:.0} examples/s at batch {})\n\
             bytes per tier: GPU {}, host {}, remote {}\n",
            self.solver,
            self.iteration_time().as_secs() * 1e3,
            self.throughput(),
            self.batch,
            Bytes::new(gpu),
            Bytes::new(host),
            Bytes::new(remote),
        );
        out.push_str(&self.placement.describe());
        out
    }
}

/// Scores the four static Figure-8 strategies on the same inputs,
/// skipping the infeasible ones. Labels come from
/// [`PlacementStrategy::label`].
pub fn static_plans(config: &ModelConfig, platform: &Platform, batch: u64) -> Vec<ShardPlan> {
    let mut out = Vec::new();
    for strategy in PlacementStrategy::figure8_lineup() {
        let Ok(placement) = Placement::plan(config, platform, strategy, ADAGRAD_STATE_MULTIPLIER)
        else {
            continue;
        };
        if let Ok(plan) = ShardPlan::new(strategy.label(), config, platform, placement, batch) {
            out.push(plan);
        }
    }
    out
}

/// The best (lowest predicted iteration time) feasible static Figure-8
/// strategy, or `None` when none places the model.
pub fn best_static(config: &ModelConfig, platform: &Platform, batch: u64) -> Option<ShardPlan> {
    static_plans(config, platform, batch)
        .into_iter()
        .min_by(|a, b| {
            a.iteration_time()
                .as_secs()
                .total_cmp(&b.iteration_time().as_secs())
        })
}

/// Looks a solver up by CLI name (`greedy`, `pack`, `refine`).
pub fn solver_by_name(name: &str) -> Option<Box<dyn Sharder>> {
    match name {
        "greedy" => Some(Box::new(GreedySharder)),
        "pack" => Some(Box::new(PackSharder)),
        "refine" => Some(Box::new(RefineSharder::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use recsim_data::production::{production_model, ProductionModelId};

    fn big_basin() -> Platform {
        Platform::big_basin(Bytes::from_gib(32))
    }

    #[test]
    fn static_plans_match_figure8_labels() {
        let m1 = production_model(ProductionModelId::M1);
        let plans = static_plans(&m1, &big_basin(), 1600);
        assert!(!plans.is_empty());
        for p in &plans {
            assert!(p.throughput() > 0.0, "{} must score", p.solver());
        }
    }

    #[test]
    fn best_static_is_minimal() {
        let m1 = production_model(ProductionModelId::M1);
        let plans = static_plans(&m1, &big_basin(), 1600);
        let best = best_static(&m1, &big_basin(), 1600).expect("m1 places");
        for p in &plans {
            assert!(best.iteration_time().as_secs() <= p.iteration_time().as_secs());
        }
    }

    #[test]
    fn solver_lookup_covers_cli_names() {
        for name in ["greedy", "pack", "refine"] {
            let solver = solver_by_name(name).expect("known solver");
            assert_eq!(solver.name(), name);
        }
        assert!(solver_by_name("anneal").is_none());
    }

    #[test]
    fn invalid_plan_is_rejected_at_construction() {
        use recsim_placement::{TableAssignment, TableLocation};
        let m1 = production_model(ProductionModelId::M1);
        let bb = big_basin();
        // A dangling GPU reference must be rejected (RV022).
        let bogus = Placement::from_parts(
            PlacementStrategy::Hybrid,
            vec![TableAssignment {
                table: 0,
                bytes: 1024,
                gather_bytes_per_example: 64,
                pooled_bytes_per_example: 64,
                location: TableLocation::Gpu(99),
            }],
            8,
            1 << 30,
            1 << 30,
            1 << 30,
        );
        let err = ShardPlan::new("bogus", &m1, &bb, bogus, 1600).expect_err("dangling GPU");
        assert!(matches!(err, ShardError::Invalid(_)), "{err}");
    }

    #[test]
    fn errors_are_displayable() {
        let e = ShardError::Placement(PlacementError::NoGpus);
        assert!(e.to_string().contains("no feasible placement"));
    }
}
