//! Property tests for the auto-sharder (ISSUE 4 satellite): every produced
//! plan (i) places all tables exactly once, (ii) never exceeds any tier's
//! capacity, and (iii) the refiner's predicted cost never exceeds the best
//! static Figure-8 strategy's on the same inputs.

use proptest::prelude::*;
use recsim_data::schema::ModelConfig;
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_placement::plan::gpu_table_capacity;
use recsim_placement::TableLocation;
use recsim_shard::{
    best_static, GreedySharder, PackSharder, RefineSharder, ShardPlan, Sharder, MAX_REMOTE_SERVERS,
};
use recsim_verify::Validate;

fn solvers() -> [Box<dyn Sharder>; 3] {
    [
        Box::new(GreedySharder),
        Box::new(PackSharder),
        Box::new(RefineSharder::with_budget(2)),
    ]
}

/// Checks invariants (i) and (ii) for one plan on one platform.
fn assert_plan_invariants(plan: &ShardPlan, platform: &Platform, num_tables: usize) {
    let p = plan.placement();
    // (i) all tables placed, exactly once, in table order.
    assert_eq!(p.assignments().len(), num_tables);
    for (i, a) in p.assignments().iter().enumerate() {
        assert_eq!(a.table, i);
    }
    // (ii) no tier over capacity.
    let per_gpu = gpu_table_capacity(platform);
    for &load in &p.gpu_loads() {
        assert!(load <= per_gpu, "GPU over capacity: {load} > {per_gpu}");
    }
    let host_cap = platform.host().memory().capacity().as_u64();
    assert!(p.host_bytes() <= host_cap);
    let per_remote = recsim_hw::memory::ddr4_dual_socket().capacity().as_u64();
    let remote = p.remote_loads();
    assert!(remote.len() <= MAX_REMOTE_SERVERS);
    for &load in &remote {
        assert!(load <= per_remote);
    }
    // No stray location classes.
    for a in p.assignments() {
        assert!(matches!(
            a.location,
            TableLocation::Gpu(_) | TableLocation::HostMemory | TableLocation::Remote(_)
        ));
    }
    // And the plan passes the same Validate gate every entry point uses.
    assert!(p.check().is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn plans_place_everything_within_capacity(
        sparse in 1usize..24,
        hash in 1_000u64..80_000_000,
        batch in 1u64..4096,
    ) {
        let config = ModelConfig::test_suite(64, sparse, hash, &[256]);
        let platform = Platform::big_basin(Bytes::from_gib(32));
        for solver in solvers() {
            match solver.shard(&config, &platform, batch) {
                Ok(plan) => assert_plan_invariants(&plan, &platform, config.num_tables()),
                // Infeasible models may be rejected, but never panicked on.
                Err(e) => prop_assert!(!e.to_string().is_empty()),
            }
        }
    }

    #[test]
    fn refine_never_loses_to_static_baselines(
        sparse in 1usize..12,
        hash in 10_000u64..60_000_000,
    ) {
        let config = ModelConfig::test_suite(64, sparse, hash, &[256]);
        let platform = Platform::big_basin(Bytes::from_gib(16));
        let batch = 512;
        let auto = RefineSharder::with_budget(2)
            .shard(&config, &platform, batch)
            .expect("big basin always has a feasible tier for test-suite models");
        if let Some(best) = best_static(&config, &platform, batch) {
            prop_assert!(
                auto.iteration_time().as_secs() <= best.iteration_time().as_secs() + 1e-12,
                "refine {}s must not lose to static `{}` {}s",
                auto.iteration_time().as_secs(),
                best.solver(),
                best.iteration_time().as_secs(),
            );
        }
    }
}
