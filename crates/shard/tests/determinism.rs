//! Solver output must be a pure function of `(config, platform, batch)`:
//! identical at any `RECSIM_THREADS` width (ISSUE 4 satellite). The
//! solvers are serial by construction — this test pins that contract so a
//! future parallel refactor keeps byte-identical plans.

use recsim_data::production::{production_model, ProductionModelId};
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_shard::{GreedySharder, PackSharder, RefineSharder, Sharder};

#[test]
fn solver_plans_are_thread_count_invariant() {
    let cases = [
        (ProductionModelId::M1, 1600u64),
        (ProductionModelId::M3, 800u64),
    ];
    let platform = Platform::big_basin(Bytes::from_gib(32));
    let solvers: [Box<dyn Sharder>; 3] = [
        Box::new(GreedySharder),
        Box::new(PackSharder),
        Box::new(RefineSharder::with_budget(4)),
    ];
    for (model_id, batch) in cases {
        let config = production_model(model_id);
        for solver in &solvers {
            let mut baseline: Option<String> = None;
            for threads in [1usize, 2, 8] {
                recsim_pool::set_thread_override(Some(threads));
                let plan = solver
                    .shard(&config, &platform, batch)
                    .unwrap_or_else(|e| panic!("{} on {model_id:?}: {e}", solver.name()));
                let rendered = format!("{plan:?}");
                match &baseline {
                    None => baseline = Some(rendered),
                    Some(b) => assert_eq!(
                        b,
                        &rendered,
                        "{} plan differs at {threads} threads on {model_id:?}",
                        solver.name()
                    ),
                }
            }
            recsim_pool::set_thread_override(None);
        }
    }
}
