//! Property tests for the per-row sharder (ISSUE 10 satellite): every
//! produced plan (i) partitions each table into hot/warm/cold ranges that
//! cover it exactly, (ii) respects every tier's capacity, (iii) is
//! identical at any pool thread count, and (iv) never costs more than the
//! whole-table baseline at the same HBM budget.

use proptest::prelude::*;
use recsim_data::schema::ModelConfig;
use recsim_hw::units::Bytes;
use recsim_hw::{Platform, ScmDevice};
use recsim_placement::plan::{table_demands, ADAGRAD_STATE_MULTIPLIER};
use recsim_shard::{per_table_plan, RowShardPlan, RowShardSolver};

fn platform() -> Platform {
    Platform::big_basin(Bytes::from_gib(32)).with_scm(ScmDevice::optane_pmem())
}

/// Invariants (i) and (ii) for one plan.
fn assert_row_plan_invariants(
    plan: &RowShardPlan,
    config: &ModelConfig,
    platform: &Platform,
    hbm_budget: Bytes,
) {
    let demands = table_demands(config, ADAGRAD_STATE_MULTIPLIER);
    assert_eq!(plan.splits().len(), demands.len());
    for (i, split) in plan.splits().iter().enumerate() {
        assert_eq!(split.table, i, "splits stay in table order");
        assert_eq!(
            split.rows,
            config.table_hash_size(i).max(1),
            "split covers the table's real row count"
        );
        assert!(
            split.hot_rows + split.warm_rows <= split.rows,
            "ranges cannot exceed the table"
        );
        assert_eq!(
            split.hot_rows + split.warm_rows + split.cold_rows(),
            split.rows,
            "hot/warm/cold partition table {i} exactly"
        );
        let masses = split.hot_mass + split.warm_mass + split.cold_mass();
        assert!(
            (masses - 1.0).abs() < 1e-9,
            "lookup mass partitions to 1, got {masses}"
        );
    }
    let (hbm, host, scm) = plan.bytes_per_tier();
    let total: u64 = demands.iter().map(|d| d.bytes).sum();
    assert_eq!(hbm + host + scm, total, "bytes conserved across tiers");
    assert!(hbm <= hbm_budget.as_u64(), "HBM budget respected");
    assert!(
        host <= platform.host().memory().capacity().as_u64(),
        "host DDR capacity respected"
    );
    assert!(
        scm <= platform.scm().expect("attached").capacity().as_u64(),
        "SCM capacity respected"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn row_splits_partition_tables_within_capacity(
        sparse in 1usize..16,
        hash in 1_000u64..40_000_000,
        batch in 1u64..4096,
        zipf in 0.5f64..1.6,
        budget_gib in 1u64..32,
    ) {
        let config = ModelConfig::test_suite(64, sparse, hash, &[256]);
        let budget = Bytes::from_gib(budget_gib);
        let plat = platform();
        let plan = RowShardSolver::default()
            .solve(&config, &plat, batch, zipf, budget)
            .expect("optane-sized SCM absorbs any test-suite tail");
        assert_row_plan_invariants(&plan, &config, &plat, budget);
    }

    #[test]
    fn row_solver_is_thread_count_invariant(
        sparse in 1usize..12,
        hash in 10_000u64..20_000_000,
        zipf in 0.6f64..1.5,
    ) {
        let config = ModelConfig::test_suite(64, sparse, hash, &[256]);
        let plat = platform();
        let budget = Bytes::from_gib(4);
        let mut baseline: Option<String> = None;
        for threads in [1usize, 2, 8] {
            recsim_pool::set_thread_override(Some(threads));
            let plan = RowShardSolver::default()
                .solve(&config, &plat, 1024, zipf, budget)
                .expect("solvable");
            let rendered = format!("{plan:?}");
            recsim_pool::set_thread_override(None);
            match &baseline {
                None => baseline = Some(rendered),
                Some(b) => prop_assert_eq!(
                    b, &rendered,
                    "per-row plan differs at {} threads", threads
                ),
            }
        }
    }

    #[test]
    fn per_row_never_loses_to_per_table_at_equal_budget(
        sparse in 1usize..16,
        hash in 1_000u64..40_000_000,
        zipf in 0.5f64..1.6,
        budget_gib in 1u64..32,
    ) {
        let config = ModelConfig::test_suite(64, sparse, hash, &[256]);
        let plat = platform();
        let budget = Bytes::from_gib(budget_gib);
        let row = RowShardSolver::default()
            .solve(&config, &plat, 1024, zipf, budget)
            .expect("solvable");
        let table = per_table_plan(&config, &plat, 1024, zipf, budget)
            .expect("solvable");
        prop_assert!(
            row.cost().as_secs() <= table.cost().as_secs() + 1e-15,
            "per-row {}s must not lose to per-table {}s (zipf {}, {} GiB)",
            row.cost().as_secs(), table.cost().as_secs(), zipf, budget_gib
        );
    }
}
