//! Ablation benches for the design choices DESIGN.md calls out: each group
//! compares the full cost model against a variant with one mechanism
//! removed, printing the throughput delta the mechanism is responsible for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recsim_data::schema::ModelConfig;
use recsim_hw::units::{Bytes, Duration};
use recsim_hw::Platform;
use recsim_placement::{PartitionScheme, PlacementStrategy};
use recsim_sim::{CostKnobs, CpuClusterSetup, CpuTrainingSim, GpuTrainingSim, SimReport};

fn model() -> ModelConfig {
    ModelConfig::test_suite(256, 16, 5_000_000, &[512, 512, 512])
}

fn run(platform: &Platform, strategy: PlacementStrategy, batch: u64) -> SimReport {
    GpuTrainingSim::new(&model(), platform, strategy, batch)
        .expect("fits")
        .run()
}

/// Ablation: random-access bandwidth penalty for embedding gathers.
fn ablation_random_access(c: &mut Criterion) {
    let bb = Platform::big_basin(Bytes::from_gib(32));
    let strategy = PlacementStrategy::GpuMemory(PartitionScheme::TableWise);
    let base = run(&bb, strategy, 1600);
    let ablated = run(&bb.without_random_access_penalty(), strategy, 1600);
    println!(
        "ablation_random_access: with penalty {:.0} ex/s, without {:.0} ex/s ({:+.1}%)",
        base.throughput(),
        ablated.throughput(),
        (ablated.throughput() / base.throughput() - 1.0) * 100.0
    );
    let mut group = c.benchmark_group("ablation_random_access");
    for (name, platform) in [
        ("with_penalty", bb.clone()),
        ("without", bb.without_random_access_penalty()),
    ] {
        let sim = GpuTrainingSim::new(&model(), &platform, strategy, 1600).expect("fits");
        group.bench_with_input(BenchmarkId::from_parameter(name), &sim, |b, sim| {
            b.iter(|| sim.run().throughput());
        });
    }
    group.finish();
}

/// Ablation: per-kernel GPU launch overhead (the batch-size saturation
/// mechanism of Figure 11).
fn ablation_launch_overhead(c: &mut Criterion) {
    let bb = Platform::big_basin(Bytes::from_gib(32));
    let strategy = PlacementStrategy::GpuMemory(PartitionScheme::TableWise);
    for batch in [200u64, 6400] {
        let base = run(&bb, strategy, batch);
        let ablated = run(&bb.without_kernel_overhead(), strategy, batch);
        println!(
            "ablation_launch_overhead batch {batch}: with {:.0} ex/s, without {:.0} ex/s \
             ({:+.1}%) — overhead matters most at small batches",
            base.throughput(),
            ablated.throughput(),
            (ablated.throughput() / base.throughput() - 1.0) * 100.0
        );
    }
    let mut group = c.benchmark_group("ablation_launch_overhead");
    for (name, platform) in [
        ("with_overhead", bb.clone()),
        ("without", bb.without_kernel_overhead()),
    ] {
        let sim = GpuTrainingSim::new(&model(), &platform, strategy, 200).expect("fits");
        group.bench_with_input(BenchmarkId::from_parameter(name), &sim, |b, sim| {
            b.iter(|| sim.run().throughput());
        });
    }
    group.finish();
}

/// Ablation: partitioning scheme (table-wise vs row-wise vs replicated).
fn ablation_partitioning(c: &mut Criterion) {
    let bb = Platform::big_basin(Bytes::from_gib(32));
    let mut group = c.benchmark_group("ablation_partitioning");
    for scheme in [
        PartitionScheme::TableWise,
        PartitionScheme::RowWise,
        PartitionScheme::Replicated,
    ] {
        let strategy = PlacementStrategy::GpuMemory(scheme);
        match GpuTrainingSim::new(&model(), &bb, strategy, 1600) {
            Ok(sim) => {
                println!(
                    "ablation_partitioning {scheme}: {:.0} ex/s",
                    sim.run().throughput()
                );
                group.bench_with_input(
                    BenchmarkId::from_parameter(scheme.to_string().replace('-', "_")),
                    &sim,
                    |b, sim| b.iter(|| sim.run().throughput()),
                );
            }
            Err(e) => println!("ablation_partitioning {scheme}: does not fit ({e})"),
        }
    }
    group.finish();
}

/// Ablation: iteration pipelining (overlapped steady state vs one serial
/// iteration — the compute/communication overlap DESIGN.md models).
fn ablation_overlap(c: &mut Criterion) {
    let zion = Platform::zion_prototype();
    let strategy = PlacementStrategy::SystemMemory;
    let sim = GpuTrainingSim::new(&model(), &zion, strategy, 1600).expect("fits");
    let pipelined = sim.run();
    let serial = sim.run_single_iteration();
    println!(
        "ablation_overlap (Zion, system memory): pipelined {:.0} ex/s vs serial {:.0} ex/s \
         ({:.2}x from overlap)",
        pipelined.throughput(),
        serial.throughput(),
        pipelined.throughput() / serial.throughput()
    );
    let mut group = c.benchmark_group("ablation_overlap");
    group.bench_function("pipelined", |b| b.iter(|| sim.run().throughput()));
    group.bench_function("serial", |b| {
        b.iter(|| sim.run_single_iteration().throughput());
    });
    group.finish();
}

/// Sensitivity sweep over every [`CostKnobs`] field: each variant perturbs
/// exactly one knob and reports the largest throughput shift it causes
/// across a GPU-memory run, a host-memory run and a CPU-cluster run. This
/// is the ablation surface the verification layer's RV005 rule keys on —
/// every knob must be exercised here (or in a sibling bench) by name.
fn knob_sensitivity(c: &mut Criterion) {
    let base = CostKnobs::default();
    let variants: Vec<(&str, CostKnobs)> = vec![
        (
            "backward_flops_multiplier",
            CostKnobs {
                backward_flops_multiplier: base.backward_flops_multiplier * 1.5,
                ..CostKnobs::default()
            },
        ),
        (
            "scatter_multiplier",
            CostKnobs {
                scatter_multiplier: base.scatter_multiplier * 2.0,
                ..CostKnobs::default()
            },
        ),
        (
            "cache_boost",
            CostKnobs {
                cache_boost: base.cache_boost * 2.0,
                ..CostKnobs::default()
            },
        ),
        (
            "cache_resident_bytes",
            CostKnobs {
                cache_resident_bytes: base.cache_resident_bytes * 4,
                ..CostKnobs::default()
            },
        ),
        (
            "dram_resident_bytes",
            CostKnobs {
                dram_resident_bytes: base.dram_resident_bytes * 4,
                ..CostKnobs::default()
            },
        ),
        (
            "kernels_per_layer",
            CostKnobs {
                kernels_per_layer: base.kernels_per_layer * 4,
                ..CostKnobs::default()
            },
        ),
        (
            "gemm_half_efficiency_flops",
            CostKnobs {
                gemm_half_efficiency_flops: base.gemm_half_efficiency_flops * 4.0,
                ..CostKnobs::default()
            },
        ),
        (
            "gpu_scatter_efficiency",
            CostKnobs {
                gpu_scatter_efficiency: 1.0,
                ..CostKnobs::default()
            },
        ),
        (
            "collective_barrier",
            CostKnobs {
                collective_barrier: Duration::from_micros(200.0),
                ..CostKnobs::default()
            },
        ),
        (
            "staging_fraction",
            CostKnobs {
                staging_fraction: 0.8,
                ..CostKnobs::default()
            },
        ),
        (
            "rpc_overhead",
            CostKnobs {
                rpc_overhead: Duration::from_micros(400.0),
                ..CostKnobs::default()
            },
        ),
        (
            "staged_hop_latency",
            CostKnobs {
                staged_hop_latency: Duration::from_micros(500.0),
                ..CostKnobs::default()
            },
        ),
        (
            "cpu_cache_bytes",
            CostKnobs {
                cpu_cache_bytes: base.cpu_cache_bytes * 8,
                ..CostKnobs::default()
            },
        ),
        (
            "hogwild_base_utilization",
            CostKnobs {
                hogwild_base_utilization: 0.9,
                ..CostKnobs::default()
            },
        ),
        (
            "hogwild_efficiency",
            CostKnobs {
                hogwild_efficiency: 0.9,
                ..CostKnobs::default()
            },
        ),
    ];

    let bb = Platform::big_basin(Bytes::from_gib(32));
    let m = model();
    let cpu_setup = CpuClusterSetup {
        trainers: 4,
        dense_ps: 2,
        sparse_ps: 2,
        hogwild_threads: 4,
        batch_per_thread: 200,
        sync_period: 16,
    };
    let throughputs = |knobs: CostKnobs| -> [f64; 3] {
        let gpu = GpuTrainingSim::new(
            &m,
            &bb,
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            1600,
        )
        .expect("fits")
        .with_knobs(knobs)
        .expect("valid knobs")
        .run()
        .throughput();
        let host = GpuTrainingSim::new(&m, &bb, PlacementStrategy::SystemMemory, 1600)
            .expect("fits")
            .with_knobs(knobs)
            .expect("valid knobs")
            .run()
            .throughput();
        let cpu = CpuTrainingSim::new(&m, cpu_setup)
            .expect("valid setup")
            .with_knobs(knobs)
            .expect("valid knobs")
            .run()
            .throughput();
        [gpu, host, cpu]
    };
    let baseline = throughputs(CostKnobs::default());
    for (name, knobs) in &variants {
        let t = throughputs(*knobs);
        let max_shift = t
            .iter()
            .zip(baseline)
            .map(|(&v, b)| (v / b - 1.0).abs())
            .fold(0.0, f64::max);
        println!(
            "knob_sensitivity {name}: max |Δthroughput| {:.1}%",
            max_shift * 100.0
        );
    }

    let mut group = c.benchmark_group("knob_sensitivity");
    group.bench_function("all_knob_variants", |b| {
        b.iter(|| {
            variants
                .iter()
                .map(|(_, k)| throughputs(*k)[0])
                .sum::<f64>()
        });
    });
    group.finish();
}

/// Sweep: lookup truncation (the paper truncates at 32 to limit outliers).
fn truncation_sweep(c: &mut Criterion) {
    let bb = Platform::big_basin(Bytes::from_gib(32));
    let strategy = PlacementStrategy::GpuMemory(PartitionScheme::TableWise);
    let mut group = c.benchmark_group("truncation_sweep");
    for truncation in [4u32, 32, 200] {
        let m = model().with_truncation(truncation);
        let sim = GpuTrainingSim::new(&m, &bb, strategy, 1600).expect("fits");
        println!(
            "truncation {truncation}: {:.0} ex/s",
            sim.run().throughput()
        );
        group.bench_with_input(BenchmarkId::from_parameter(truncation), &sim, |b, sim| {
            b.iter(|| sim.run().throughput());
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion.sample_size(15);
    targets = ablation_random_access, ablation_launch_overhead, ablation_partitioning,
              ablation_overlap, knob_sensitivity, truncation_sweep
);
criterion_main!(benches);
