//! Criterion benches that double as figure regenerators: each group runs
//! the simulator configurations behind one paper figure and prints the
//! measured series once before timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use recsim_data::production::{production_model, ProductionModelId};
use recsim_data::schema::ModelConfig;
use recsim_hw::units::Bytes;
use recsim_hw::Platform;
use recsim_placement::{PartitionScheme, PlacementStrategy};
use recsim_sim::{CpuClusterSetup, CpuTrainingSim, GpuTrainingSim};

fn suite_model(dense: usize, sparse: usize, hash: u64) -> ModelConfig {
    ModelConfig::test_suite(dense, sparse, hash, &[512, 512, 512])
}

fn big_basin() -> Platform {
    Platform::big_basin(Bytes::from_gib(32))
}

/// Figure 11: batch-size scaling (GPU side).
fn batch_scaling(c: &mut Criterion) {
    let model = suite_model(256, 16, 100_000);
    let bb = big_basin();
    let mut group = c.benchmark_group("fig11_batch_scaling");
    for batch in [200u64, 800, 3200, 12800] {
        let sim = GpuTrainingSim::new(
            &model,
            &bb,
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            batch,
        )
        .expect("fits");
        println!(
            "fig11 gpu batch {batch}: {:.0} ex/s",
            sim.run().throughput()
        );
        group.bench_with_input(BenchmarkId::new("gpu", batch), &sim, |b, sim| {
            b.iter(|| sim.run().throughput());
        });
    }
    for batch in [200u64, 1600, 6400] {
        let sim = CpuTrainingSim::new(&model, CpuClusterSetup::single_trainer(batch))
            .expect("valid setup");
        println!(
            "fig11 cpu batch {batch}: {:.0} ex/s",
            sim.run().throughput()
        );
        group.bench_with_input(BenchmarkId::new("cpu", batch), &sim, |b, sim| {
            b.iter(|| sim.run().throughput());
        });
    }
    group.finish();
}

/// Figure 10: the dense x sparse feature sweep (corner points).
fn feature_sweep(c: &mut Criterion) {
    let bb = big_basin();
    let mut group = c.benchmark_group("fig10_feature_sweep");
    for (dense, sparse) in [(64usize, 4usize), (64, 128), (4096, 4), (4096, 128)] {
        let model = suite_model(dense, sparse, 100_000);
        let sim = GpuTrainingSim::new(
            &model,
            &bb,
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            1600,
        )
        .expect("fits");
        println!(
            "fig10 d={dense} s={sparse}: {:.0} ex/s",
            sim.run().throughput()
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{dense}_s{sparse}")),
            &sim,
            |b, sim| b.iter(|| sim.run().throughput()),
        );
    }
    group.finish();
}

/// Figure 12: hash-size scaling.
fn hash_scaling(c: &mut Criterion) {
    let bb = big_basin();
    let mut group = c.benchmark_group("fig12_hash_scaling");
    for hash in [10_000u64, 1_000_000, 50_000_000] {
        let model = suite_model(256, 16, hash);
        let sim = GpuTrainingSim::new(
            &model,
            &bb,
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            1600,
        )
        .expect("fits");
        println!("fig12 hash {hash}: {:.0} ex/s", sim.run().throughput());
        group.bench_with_input(BenchmarkId::from_parameter(hash), &sim, |b, sim| {
            b.iter(|| sim.run().throughput());
        });
    }
    group.finish();
}

/// Figure 13: MLP-dimension scaling.
fn mlp_scaling(c: &mut Criterion) {
    let bb = big_basin();
    let mut group = c.benchmark_group("fig13_mlp_scaling");
    for (width, layers) in [(64usize, 2usize), (512, 3), (2048, 4)] {
        let mlp = vec![width; layers];
        let model = ModelConfig::test_suite(256, 16, 100_000, &mlp);
        let sim = GpuTrainingSim::new(
            &model,
            &bb,
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            1600,
        )
        .expect("fits");
        println!(
            "fig13 mlp {width}^{layers}: {:.0} ex/s",
            sim.run().throughput()
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{width}x{layers}")),
            &sim,
            |b, sim| b.iter(|| sim.run().throughput()),
        );
    }
    group.finish();
}

/// Figure 14 / Table III: production models across placements.
fn production_models(c: &mut Criterion) {
    let bb = big_basin();
    let zion = Platform::zion_prototype();
    let mut group = c.benchmark_group("production_models");
    group.sample_size(10);
    for id in ProductionModelId::ALL {
        let model = production_model(id);
        for (platform, pname) in [(&bb, "bb"), (&zion, "zion")] {
            for strategy in PlacementStrategy::figure8_lineup() {
                if let Ok(sim) = GpuTrainingSim::new(&model, platform, strategy, 1600) {
                    println!(
                        "fig14/{} {} {}: {:.0} ex/s",
                        id.name(),
                        pname,
                        strategy,
                        sim.run().throughput()
                    );
                    group.bench_with_input(
                        BenchmarkId::from_parameter(format!(
                            "{}_{pname}_{}",
                            id.name(),
                            strategy.label().replace([' ', '(', ')', '+', '/'], "_")
                        )),
                        &sim,
                        |b, sim| b.iter(|| sim.run().throughput()),
                    );
                }
            }
        }
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion.sample_size(20);
    targets = batch_scaling, feature_sweep, hash_scaling, mlp_scaling, production_models
);
criterion_main!(benches);
