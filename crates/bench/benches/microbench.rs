//! Microbenchmarks of the substrates: matrix kernels, embedding bags, the
//! discrete-event engine and the workload generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use recsim_data::schema::ModelConfig;
use recsim_data::{CtrGenerator, SparseBatch};
use recsim_hw::units::Duration;
use recsim_model::embedding::EmbeddingTable;
use recsim_model::Matrix;
use recsim_sim::des::TaskGraph;
use recsim_sim::SimScratch;

fn matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 128, 256] {
        let a = Matrix::xavier(n, n, 1);
        let b = Matrix::xavier(n, n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b), |bch, (a, b)| {
            bch.iter(|| a.matmul(b));
        });
    }
    group.finish();
}

fn embedding_bag(c: &mut Criterion) {
    let table = EmbeddingTable::new(100_000, 32, 1);
    // 256 examples x 20 lookups.
    let mut offsets = vec![0usize];
    let mut indices = Vec::new();
    for i in 0..256u32 {
        for j in 0..20u32 {
            indices.push((i * 2654435761u32).wrapping_add(j * 40503) % 100_000);
        }
        offsets.push(indices.len());
    }
    let batch = SparseBatch::new(offsets, indices);
    let mut group = c.benchmark_group("embedding_bag");
    group.throughput(Throughput::Elements(batch.total_lookups() as u64));
    group.bench_function("forward_256x20", |b| b.iter(|| table.forward(&batch)));
    let pooled = table.forward(&batch);
    group.bench_function("backward_256x20", |b| {
        b.iter(|| table.backward(&batch, &pooled));
    });
    group.finish();
}

fn des_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_engine");
    for tasks in [100usize, 1000] {
        group.throughput(Throughput::Elements(tasks as u64));
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
            b.iter(|| {
                let mut g = TaskGraph::new();
                let r1 = g.add_resource("a", 2);
                let r2 = g.add_resource("b", 1);
                let mut prev = None;
                for i in 0..tasks {
                    let res = if i % 3 == 0 { r2 } else { r1 };
                    let deps: Vec<_> = prev.into_iter().collect();
                    prev = Some(g.add_task(
                        "t",
                        Duration::from_micros((i % 7 + 1) as f64),
                        Some(res),
                        &deps,
                    ));
                }
                g.simulate().expect("valid graph").makespan()
            });
        });
    }
    group.finish();
}

/// The DES hot path with and without arena reuse: `simulate()` allocates a
/// fresh heap/queues/adjacency every call, `simulate_in` borrows a
/// [`SimScratch`] whose buffers survive across calls — the difference is
/// what a grid driver pays per extra sweep point.
fn des_scratch_reuse(c: &mut Criterion) {
    let build = |tasks: usize| {
        let mut g = TaskGraph::new();
        let r1 = g.add_resource("a", 2);
        let r2 = g.add_resource("b", 1);
        let mut prev = None;
        for i in 0..tasks {
            let res = if i % 3 == 0 { r2 } else { r1 };
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(g.add_task(
                "t",
                Duration::from_micros((i % 7 + 1) as f64),
                Some(res),
                &deps,
            ));
        }
        g
    };
    // Wide shape: one slot per resource, like the per-GPU/per-link resources
    // of a training pipeline. Fresh allocation pays one wait-queue per
    // resource per call, which is exactly what the scratch arena retains.
    let build_wide = |resources: usize, tasks: usize| {
        let mut g = TaskGraph::new();
        let rs: Vec<_> = (0..resources)
            .map(|i| g.add_resource(format!("r{i}"), 1))
            .collect();
        let mut prev = None;
        for i in 0..tasks {
            let deps: Vec<_> = prev.into_iter().collect();
            let t = g.add_task(
                "t",
                Duration::from_micros(1.0),
                Some(rs[i % resources]),
                &deps,
            );
            prev = (i % 7 == 0).then_some(t);
        }
        g
    };
    let mut group = c.benchmark_group("des_scratch_reuse");
    let shapes = [
        ("chain100", build(100)),
        ("chain1000", build(1000)),
        ("wide64x512", build_wide(64, 512)),
    ];
    for (label, g) in &shapes {
        group.throughput(Throughput::Elements(g.len() as u64));
        group.bench_with_input(BenchmarkId::new("fresh_alloc", label), g, |b, g| {
            b.iter(|| g.simulate().expect("valid graph").makespan());
        });
        group.bench_with_input(BenchmarkId::new("reused_scratch", label), g, |b, g| {
            let mut scratch = SimScratch::new();
            b.iter(|| g.simulate_in(&mut scratch).expect("valid graph").makespan());
        });
    }
    group.finish();
}

fn data_generation(c: &mut Criterion) {
    let cfg = ModelConfig::test_suite(64, 16, 100_000, &[128]);
    let mut group = c.benchmark_group("data_generation");
    group.throughput(Throughput::Elements(256));
    group.bench_function("ctr_batch_256", |b| {
        let mut gen = CtrGenerator::new(&cfg, 7);
        b.iter(|| gen.next_batch(256));
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion.sample_size(30);
    targets = matmul, embedding_bag, des_engine, des_scratch_reuse, data_generation
);
criterion_main!(benches);
