//! Microbenchmarks of the substrates: matrix kernels, embedding bags, the
//! discrete-event engine and the workload generator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use recsim_data::schema::ModelConfig;
use recsim_data::{CtrGenerator, SparseBatch};
use recsim_hw::units::Duration;
use recsim_model::embedding::EmbeddingTable;
use recsim_model::Matrix;
use recsim_sim::des::TaskGraph;

fn matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for n in [32usize, 128, 256] {
        let a = Matrix::xavier(n, n, 1);
        let b = Matrix::xavier(n, n, 2);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b), |bch, (a, b)| {
            bch.iter(|| a.matmul(b))
        });
    }
    group.finish();
}

fn embedding_bag(c: &mut Criterion) {
    let table = EmbeddingTable::new(100_000, 32, 1);
    // 256 examples x 20 lookups.
    let mut offsets = vec![0usize];
    let mut indices = Vec::new();
    for i in 0..256u32 {
        for j in 0..20u32 {
            indices.push((i * 2654435761u32).wrapping_add(j * 40503) % 100_000);
        }
        offsets.push(indices.len());
    }
    let batch = SparseBatch::new(offsets, indices);
    let mut group = c.benchmark_group("embedding_bag");
    group.throughput(Throughput::Elements(batch.total_lookups() as u64));
    group.bench_function("forward_256x20", |b| b.iter(|| table.forward(&batch)));
    let pooled = table.forward(&batch);
    group.bench_function("backward_256x20", |b| b.iter(|| table.backward(&batch, &pooled)));
    group.finish();
}

fn des_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_engine");
    for tasks in [100usize, 1000] {
        group.throughput(Throughput::Elements(tasks as u64));
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
            b.iter(|| {
                let mut g = TaskGraph::new();
                let r1 = g.add_resource("a", 2);
                let r2 = g.add_resource("b", 1);
                let mut prev = None;
                for i in 0..tasks {
                    let res = if i % 3 == 0 { r2 } else { r1 };
                    let deps: Vec<_> = prev.into_iter().collect();
                    prev = Some(g.add_task(
                        "t",
                        Duration::from_micros((i % 7 + 1) as f64),
                        Some(res),
                        &deps,
                    ));
                }
                g.simulate().expect("valid graph").makespan()
            })
        });
    }
    group.finish();
}

fn data_generation(c: &mut Criterion) {
    let cfg = ModelConfig::test_suite(64, 16, 100_000, &[128]);
    let mut group = c.benchmark_group("data_generation");
    group.throughput(Throughput::Elements(256));
    group.bench_function("ctr_batch_256", |b| {
        let mut gen = CtrGenerator::new(&cfg, 7);
        b.iter(|| gen.next_batch(256))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = matmul, embedding_bag, des_engine, data_generation
);
criterion_main!(benches);
