//! Benches of the *real* numerics: train-step latency across batch sizes
//! (the raw material behind Figure 15) and end-to-end convergence runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use recsim_data::schema::ModelConfig;
use recsim_data::CtrGenerator;
use recsim_model::optim::Optimizer;
use recsim_model::DlrmModel;
use recsim_train::trainer::{TrainRun, TrainerConfig};

fn model_config() -> ModelConfig {
    ModelConfig::test_suite(16, 4, 2_000, &[32, 16])
}

/// Latency of one forward+backward+update step at various batch sizes.
fn train_step(c: &mut Criterion) {
    let cfg = model_config();
    let mut group = c.benchmark_group("train_step");
    for batch in [50usize, 200, 800] {
        let mut gen = CtrGenerator::new(&cfg, 1);
        let batch_data = gen.next_batch(batch);
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(batch),
            &batch_data,
            |b, data| {
                let mut model = DlrmModel::new(&cfg, 2);
                let mut opt = Optimizer::adagrad(0.05);
                b.iter(|| model.train_step(data, &mut opt));
            },
        );
    }
    group.finish();
}

/// Evaluation-only forward pass latency.
fn inference(c: &mut Criterion) {
    let cfg = model_config();
    let model = DlrmModel::new(&cfg, 3);
    let mut gen = CtrGenerator::new(&cfg, 4);
    let batch = gen.next_batch(256);
    let mut group = c.benchmark_group("inference");
    group.throughput(Throughput::Elements(256));
    group.bench_function("forward_256", |b| b.iter(|| model.forward(&batch)));
    group.finish();
}

/// A short convergence run (Figure 15's inner loop), printing the NE it
/// reaches.
fn training_convergence(c: &mut Criterion) {
    let cfg = model_config();
    let trainer_cfg = TrainerConfig {
        batch_size: 200,
        train_examples: 8_000,
        eval_examples: 2_000,
        learning_rate: 0.04,
        warmup_steps: 10,
        adagrad: true,
        seed: 31,
    };
    let ne = TrainRun::new(&cfg, trainer_cfg).execute().final_ne();
    println!("training_convergence: NE {ne:.4} after 8k examples");
    let mut group = c.benchmark_group("training_convergence");
    group.sample_size(10);
    group.bench_function("8k_examples", |b| {
        b.iter(|| TrainRun::new(&cfg, trainer_cfg).execute().final_ne());
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion.sample_size(20);
    targets = train_step, inference, training_convergence
);
criterion_main!(benches);
