//! Benchmark-harness support: run an experiment driver, print its report,
//! persist the structured result, and fail loudly when a paper claim does
//! not reproduce.
//!
//! # The `BENCH_sweeps.json` baseline
//!
//! `cargo run --release -p recsim-bench --bin all_experiments` times every
//! driver twice — a serial pass (one driver at a time, in registry order)
//! and a parallel pass ([`recsim_core::experiments::run_all`], which fans
//! drivers and their inner grid points across a `recsim-pool` thread pool)
//! — verifies the two passes produce byte-identical JSON, and writes the
//! comparison to `BENCH_sweeps.json` at the workspace root:
//!
//! ```text
//! {
//!   "schema": "recsim-bench-sweeps-v1",
//!   "threads": 4,                        // pool width used by the parallel pass
//!   "effort": "quick" | "full",
//!   "drivers": [                         // registry order
//!     { "id": "table1", "serial_secs": 0.812 },
//!     ...
//!   ],
//!   "serial_total_secs": 14.2,           // sum of the serial pass
//!   "parallel_total_secs": 4.1,          // one wall-clock for the whole fan-out
//!   "speedup": 3.46,                     // serial_total / parallel_total
//!   "outputs_identical": true            // byte-equal serialized outputs
//! }
//! ```
//!
//! `outputs_identical: false` (or a missing file) means the determinism
//! contract of `recsim_core::sweep` was violated; the binary also exits
//! non-zero in that case. `speedup` is hardware-dependent: expect ~1.0 on a
//! single-core container and scaling with physical cores elsewhere.
//!
//! `BENCH_autoshard.json` (written by the `autoshard_baseline` binary)
//! follows the same schema with a single-entry `drivers` list: the
//! `autoshard` driver timed at 1 thread vs the pool width, byte-identical
//! outputs required.
//!
//! `BENCH_serve.json` (written by the `serve_baseline` binary) records the
//! serving tier under its own `recsim-bench-serve-v1` schema: the `serve`
//! driver timed at 1 thread vs the pool width (`serial_wall_secs`,
//! `parallel_wall_secs`, `speedup`, `outputs_identical`) plus a
//! `scenarios` table of headline tail-latency numbers (offered/goodput
//! rps, p50/p99/p999 ms, SLO attainment, cache hit rate) for the steady,
//! traffic-spike, and model-push scenarios.

#![forbid(unsafe_code)]

use recsim_core::{Effort, ExperimentOutput};
use std::path::{Path, PathBuf};

/// Where experiment binaries write their JSON artifacts.
pub fn results_dir() -> PathBuf {
    std::env::var_os("RECSIM_RESULTS_DIR").map_or_else(|| PathBuf::from("results"), PathBuf::from)
}

/// Chooses the effort level: `RECSIM_QUICK=1` selects the reduced scale.
pub fn effort_from_env() -> Effort {
    if std::env::var_os("RECSIM_QUICK").is_some() {
        Effort::Quick
    } else {
        Effort::Full
    }
}

/// Writes one experiment's structured artifacts (`<id>.json` plus one CSV
/// per figure) into `dir`, creating it first. Returns the first I/O or
/// serialization error instead of swallowing it, so callers can decide
/// whether a missing artifact is fatal.
pub fn write_artifacts(out: &ExperimentOutput, dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("could not create results dir {}: {e}", dir.display()))?;
    let path = dir.join(format!("{}.json", out.id));
    let json = serde_json::to_string_pretty(out)
        .map_err(|e| format!("could not serialize {}: {e}", out.id))?;
    std::fs::write(&path, json).map_err(|e| format!("could not write {}: {e}", path.display()))?;
    println!("(structured result written to {})", path.display());
    for (i, figure) in out.figures.iter().enumerate() {
        let csv_path = dir.join(format!("{}_fig{}.csv", out.id, i));
        std::fs::write(&csv_path, figure.to_csv())
            .map_err(|e| format!("could not write {}: {e}", csv_path.display()))?;
        println!("(series written to {})", csv_path.display());
    }
    Ok(())
}

/// Runs one driver, prints its rendered report, writes
/// `results/<id>.json`, and exits with a non-zero status if any claim
/// failed — the entry point shared by every experiment binary.
///
/// A result that cannot be persisted (unwritable `RECSIM_RESULTS_DIR`,
/// full disk, ...) is also a hard failure: a benchmark whose artifact
/// silently vanishes looks identical to one that was never run.
pub fn run_and_report(driver: fn(Effort) -> ExperimentOutput) {
    let effort = effort_from_env();
    let out = driver(effort);
    print!("{}", out.render());
    if let Err(e) = write_artifacts(&out, &results_dir()) {
        eprintln!("{e}");
        std::process::exit(1);
    }
    if !out.all_claims_hold() {
        eprintln!("{}: {} claim(s) FAILED", out.id, out.failed_claims().len());
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_defaults_to_full() {
        // The test environment does not set RECSIM_QUICK for this assertion
        // to be meaningful; guard accordingly.
        if std::env::var_os("RECSIM_QUICK").is_none() {
            assert_eq!(effort_from_env(), Effort::Full);
        }
    }

    #[test]
    fn results_dir_defaults() {
        if std::env::var_os("RECSIM_RESULTS_DIR").is_none() {
            assert_eq!(results_dir(), PathBuf::from("results"));
        }
    }

    #[test]
    fn write_artifacts_reports_unwritable_dir() {
        let out = ExperimentOutput::new("bench_test", "write_artifacts error path");
        // A results "dir" nested under a regular file cannot be created.
        let base = std::env::temp_dir().join("recsim_bench_unwritable");
        std::fs::write(&base, b"not a directory").expect("temp file");
        let err = write_artifacts(&out, &base.join("results"))
            .expect_err("creating a dir under a file must fail");
        assert!(err.contains("could not create results dir"), "{err}");
        let _ = std::fs::remove_file(&base);
    }

    #[test]
    fn write_artifacts_roundtrips() {
        let out = ExperimentOutput::new("bench_test_ok", "write_artifacts happy path");
        let dir = std::env::temp_dir().join("recsim_bench_ok");
        write_artifacts(&out, &dir).expect("writable dir");
        let written = std::fs::read_to_string(dir.join("bench_test_ok.json")).expect("artifact");
        assert!(written.contains("bench_test_ok"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
