//! Benchmark-harness support: run an experiment driver, print its report,
//! persist the structured result, and fail loudly when a paper claim does
//! not reproduce.

#![forbid(unsafe_code)]

use recsim_core::{Effort, ExperimentOutput};
use std::path::PathBuf;

/// Where experiment binaries write their JSON artifacts.
pub fn results_dir() -> PathBuf {
    std::env::var_os("RECSIM_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Chooses the effort level: `RECSIM_QUICK=1` selects the reduced scale.
pub fn effort_from_env() -> Effort {
    if std::env::var_os("RECSIM_QUICK").is_some() {
        Effort::Quick
    } else {
        Effort::Full
    }
}

/// Runs one driver, prints its rendered report, writes
/// `results/<id>.json`, and exits with a non-zero status if any claim
/// failed — the entry point shared by every experiment binary.
pub fn run_and_report(driver: fn(Effort) -> ExperimentOutput) {
    let effort = effort_from_env();
    let out = driver(effort);
    print!("{}", out.render());
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{}.json", out.id));
        match serde_json::to_string_pretty(&out) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("could not write {}: {e}", path.display());
                } else {
                    println!("(structured result written to {})", path.display());
                }
            }
            Err(e) => eprintln!("could not serialize result: {e}"),
        }
        for (i, figure) in out.figures.iter().enumerate() {
            let csv_path = dir.join(format!("{}_fig{}.csv", out.id, i));
            if std::fs::write(&csv_path, figure.to_csv()).is_ok() {
                println!("(series written to {})", csv_path.display());
            }
        }
    }
    if !out.all_claims_hold() {
        eprintln!("{}: {} claim(s) FAILED", out.id, out.failed_claims().len());
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_defaults_to_full() {
        // The test environment does not set RECSIM_QUICK for this assertion
        // to be meaningful; guard accordingly.
        if std::env::var_os("RECSIM_QUICK").is_none() {
            assert_eq!(effort_from_env(), Effort::Full);
        }
    }

    #[test]
    fn results_dir_defaults() {
        if std::env::var_os("RECSIM_RESULTS_DIR").is_none() {
            assert_eq!(results_dir(), PathBuf::from("results"));
        }
    }
}
