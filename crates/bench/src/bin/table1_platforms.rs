//! Regenerates the paper's table1 artifact. See recsim-core::experiments::table1.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::table1::run);
}
