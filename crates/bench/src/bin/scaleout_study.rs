//! Regenerates the scaleout study. See recsim-core::experiments::scaleout.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::scaleout::run);
}
