//! Regenerates the paper's fig02 artifact. See recsim-core::experiments::fig02.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::fig02::run);
}
