//! Regenerates the quantization/placement study. See recsim-core::experiments::compression.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::compression::run);
}
