//! Regenerates the paper's fig07 artifact. See recsim-core::experiments::fig07.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::fig07::run);
}
