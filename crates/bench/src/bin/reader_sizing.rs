//! Regenerates the reader-tier sizing study. See recsim-core::experiments::readers.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::readers::run);
}
