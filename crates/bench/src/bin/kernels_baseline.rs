//! Runs the `automl` driver (the real-training hot path) twice — a timed
//! pass with the kernel profiler disarmed and a timed pass with it armed —
//! verifies the two produce byte-identical structured outputs (timing
//! scopes must never perturb results), and records the per-op FLOP/byte
//! baseline in `BENCH_kernels.json` at the workspace root under the
//! `recsim-bench-kernels-v1` schema. Set RECSIM_QUICK=1 for the reduced
//! grid; RECSIM_THREADS caps the pool as usual.
use std::time::Instant;

fn main() {
    let effort = recsim_bench::effort_from_env();
    let run = recsim_core::experiments::automl::run;

    // Baseline pass: profiler off — the production configuration whose
    // wall clock the armed pass is compared against.
    recsim_prof::set_enabled(false);
    recsim_prof::reset();
    let baseline_start = Instant::now();
    let baseline = run(effort);
    let baseline_wall = baseline_start.elapsed().as_secs_f64();

    // Profiled pass: every operator scope live, counters accumulating.
    recsim_prof::reset();
    recsim_prof::set_enabled(true);
    let profiled_start = Instant::now();
    let profiled = run(effort);
    let profiled_wall = profiled_start.elapsed().as_secs_f64();
    let snapshot = recsim_prof::drain();
    recsim_prof::set_enabled(false);

    let to_json = |out: &recsim_core::ExperimentOutput| {
        serde_json::to_string(out).expect("experiment outputs serialize")
    };
    let outputs_identical = to_json(&baseline) == to_json(&profiled);
    if !outputs_identical {
        eprintln!(">>> profiled automl output differs from the profiler-off run");
    }
    let failures = profiled.failed_claims().len();
    if failures > 0 {
        eprintln!(">>> automl: {failures} claim(s) FAILED under the profiler");
    }

    let loop_total = snapshot.phase_total_ns() as f64 * 1e-9;
    let leaf_total = snapshot.leaf_total_ns() as f64 * 1e-9;
    let overhead = if baseline_wall > 0.0 {
        (profiled_wall - baseline_wall) / baseline_wall * 100.0
    } else {
        0.0
    };
    println!(
        "==== baseline {baseline_wall:.2}s, profiled {profiled_wall:.2}s \
         ({overhead:+.1}% overhead), outputs identical: {outputs_identical} ===="
    );

    // Prior committed baseline (read before this run overwrites it): each
    // op gains a `speedup_vs` ratio against its previous `total_secs`, and
    // the document a top-level one against the previous wall clock, so a
    // kernel regression is visible in the diff of the re-recorded file.
    let root = recsim_verify::lint::workspace_root().unwrap_or_else(|| ".".into());
    let bench_path = root.join("BENCH_kernels.json");
    let prior: Option<serde_json::Value> = std::fs::read_to_string(&bench_path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());
    let prior_op_secs = |op: &str| -> Option<f64> {
        prior
            .as_ref()?
            .get("ops")?
            .as_array()?
            .iter()
            .find(|o| o.get("op").and_then(|v| v.as_str()) == Some(op))?
            .get("total_secs")?
            .as_f64()
    };
    let ratio = |prior_secs: Option<f64>, now_secs: f64| -> Option<f64> {
        match prior_secs {
            Some(p) if now_secs > 0.0 => Some(p / now_secs),
            _ => None,
        }
    };

    let ops: Vec<serde_json::Value> = snapshot
        .active_ops()
        .map(|p| {
            println!(
                "{:<16} count {:>6}  total {:>9.3} ms  p50 {:>8.1} us  p99 {:>8.1} us  \
                 {:>8.2} GFLOP  {:>8.2} GB",
                p.op.id(),
                p.count,
                p.total_ns as f64 * 1e-6,
                p.p50_ns as f64 * 1e-3,
                p.p99_ns as f64 * 1e-3,
                p.flops as f64 * 1e-9,
                p.bytes as f64 * 1e-9,
            );
            let total_secs = p.total_ns as f64 * 1e-9;
            // `speedup_vs`: this op's prior committed total over the new
            // one (null only when no prior baseline exists).
            serde_json::json!({
                "op": p.op.id(),
                "count": p.count,
                "total_secs": total_secs,
                "p50_us": p.p50_ns as f64 * 1e-3,
                "p99_us": p.p99_ns as f64 * 1e-3,
                "gflop": p.flops as f64 * 1e-9,
                "gbyte": p.bytes as f64 * 1e-9,
                "speedup_vs": ratio(prior_op_secs(p.op.id()), total_secs),
            })
        })
        .collect();

    let prior_wall = prior
        .as_ref()
        .and_then(|p| p.get("baseline_wall_secs"))
        .and_then(|v| v.as_f64());
    let wall_speedup = ratio(prior_wall, baseline_wall);
    if let Some(s) = wall_speedup {
        println!("==== {s:.2}x vs committed baseline wall ====");
    }
    let bench_doc = serde_json::json!({
        "schema": recsim_verify::lint::artifacts::KERNELS_SCHEMA,
        "effort": if effort == recsim_core::Effort::Quick { "quick" } else { "full" },
        "ops": ops,
        "loop_total_secs": loop_total,
        "leaf_total_secs": leaf_total,
        "baseline_wall_secs": baseline_wall,
        "profiled_wall_secs": profiled_wall,
        "outputs_identical": outputs_identical,
        "speedup_vs": wall_speedup,
    });
    match serde_json::to_string_pretty(&bench_doc) {
        Ok(json) => match std::fs::write(&bench_path, json + "\n") {
            Ok(()) => println!("(kernel baseline written to {})", bench_path.display()),
            Err(e) => {
                eprintln!("could not write {}: {e}", bench_path.display());
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("could not serialize kernel baseline: {e}");
            std::process::exit(1);
        }
    }

    if failures > 0 || !outputs_identical {
        std::process::exit(1);
    }
}
