//! Regenerates the paper's fig06 artifact. See recsim-core::experiments::fig06.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::fig06::run);
}
