//! Runs the `faults` experiment driver twice — a timed 1-thread pass and a
//! timed parallel pass — verifies the two produce byte-identical structured
//! outputs (fault schedules are counter-keyed, so the MTBF sweep is
//! deterministic at any width), persists the artifact under `results/`, and
//! records the speedup baseline in `BENCH_faults.json` at the workspace
//! root, following the `recsim-bench-sweeps-v1` schema of
//! `BENCH_sweeps.json`. Set RECSIM_QUICK=1 for the reduced MTBF grid;
//! RECSIM_THREADS caps the parallel pass.
use std::time::Instant;

fn main() {
    let effort = recsim_bench::effort_from_env();
    let run = recsim_core::experiments::faults::run;

    // Serial timed pass: pool pinned to one thread. This pass is rendered,
    // claim-checked, and persisted.
    recsim_pool::set_thread_override(Some(1));
    let serial_start = Instant::now();
    let serial = run(effort);
    let serial_total = serial_start.elapsed().as_secs_f64();
    recsim_pool::set_thread_override(None);

    print!("{}", serial.render());
    println!();
    let failures = serial.failed_claims().len();
    if failures > 0 {
        eprintln!(">>> faults: {failures} claim(s) FAILED");
    }
    if let Err(e) = recsim_bench::write_artifacts(&serial, &recsim_bench::results_dir()) {
        eprintln!("{e}");
        std::process::exit(1);
    }

    // Parallel timed pass: the (setup, MTBF) points fan across workers.
    let threads = recsim_pool::thread_count();
    println!("==== parallel re-run across {threads} thread(s) ====");
    let parallel_start = Instant::now();
    let parallel = run(effort);
    let parallel_total = parallel_start.elapsed().as_secs_f64();

    let to_json = |out: &recsim_core::ExperimentOutput| {
        serde_json::to_string(out).expect("experiment outputs serialize")
    };
    let outputs_identical = to_json(&serial) == to_json(&parallel);
    if !outputs_identical {
        eprintln!(">>> parallel faults output differs from the 1-thread run");
    }

    let speedup = if parallel_total > 0.0 {
        serial_total / parallel_total
    } else {
        1.0
    };
    println!(
        "==== serial {serial_total:.2}s, parallel {parallel_total:.2}s on {threads} thread(s) \
         ({speedup:.2}x), outputs identical: {outputs_identical} ===="
    );

    let bench_doc = serde_json::json!({
        "schema": "recsim-bench-sweeps-v1",
        "threads": threads,
        "effort": if effort == recsim_core::Effort::Quick { "quick" } else { "full" },
        "drivers": [serde_json::json!({ "id": "faults", "serial_secs": serial_total })],
        "serial_total_secs": serial_total,
        "parallel_total_secs": parallel_total,
        "speedup": speedup,
        "outputs_identical": outputs_identical,
    });
    let root = recsim_verify::lint::workspace_root().unwrap_or_else(|| ".".into());
    let bench_path = root.join("BENCH_faults.json");
    match serde_json::to_string_pretty(&bench_doc) {
        Ok(json) => match std::fs::write(&bench_path, json + "\n") {
            Ok(()) => println!("(faults baseline written to {})", bench_path.display()),
            Err(e) => {
                eprintln!("could not write {}: {e}", bench_path.display());
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("could not serialize bench baseline: {e}");
            std::process::exit(1);
        }
    }

    if failures > 0 || !outputs_identical {
        std::process::exit(1);
    }
}
