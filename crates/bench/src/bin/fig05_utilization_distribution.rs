//! Regenerates the paper's fig05 artifact. See recsim-core::experiments::fig05.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::fig05::run);
}
