//! Runs the `rowshard` experiment driver twice — a timed 1-thread pass and
//! a timed parallel pass — verifies the two produce byte-identical
//! structured outputs (the row-split solver and the sweep are deterministic
//! at any width), persists the artifact under `results/`, prices one
//! representative per-model cell directly (per-row vs per-table at an
//! equal HBM budget with the warm tier capped at 2x), and records the
//! baseline in `BENCH_rowshard.json` at the workspace root under the
//! `recsim-bench-rowshard-v1` schema. Set RECSIM_QUICK=1 for the reduced
//! sweep; RECSIM_THREADS caps the parallel pass.
use std::time::Instant;

use recsim_data::production::{production_model, ProductionModelId};
use recsim_hw::units::Bytes;
use recsim_hw::{Platform, ScmDevice};
use recsim_placement::plan::{table_demands, ADAGRAD_STATE_MULTIPLIER};
use recsim_shard::{per_table_plan_with_caps, RowShardSolver};

/// Representative cell: lookup skew and HBM budget (as a fraction of each
/// model's own footprint) for the per-model summary rows.
const REF_ZIPF: f64 = 1.1;
const REF_HBM_FRAC: f64 = 0.15;
const REF_DDR_MULTIPLE: f64 = 2.0;

fn main() {
    let effort = recsim_bench::effort_from_env();
    let run = recsim_core::experiments::rowshard::run;

    // Serial timed pass: pool pinned to one thread. This pass is rendered,
    // claim-checked, and persisted.
    recsim_pool::set_thread_override(Some(1));
    let serial_start = Instant::now();
    let serial = run(effort);
    let serial_total = serial_start.elapsed().as_secs_f64();
    recsim_pool::set_thread_override(None);

    print!("{}", serial.render());
    println!();
    let failures = serial.failed_claims().len();
    if failures > 0 {
        eprintln!(">>> rowshard: {failures} claim(s) FAILED");
    }
    if let Err(e) = recsim_bench::write_artifacts(&serial, &recsim_bench::results_dir()) {
        eprintln!("{e}");
        std::process::exit(1);
    }

    // Parallel timed pass: the skew x budget grid fans across workers.
    let threads = recsim_pool::thread_count();
    println!("==== parallel re-run across {threads} thread(s) ====");
    let parallel_start = Instant::now();
    let parallel = run(effort);
    let parallel_total = parallel_start.elapsed().as_secs_f64();

    let to_json = |out: &recsim_core::ExperimentOutput| {
        serde_json::to_string(out).expect("experiment outputs serialize")
    };
    let outputs_identical = to_json(&serial) == to_json(&parallel);
    if !outputs_identical {
        eprintln!(">>> parallel rowshard output differs from the 1-thread run");
    }

    // Per-model summary rows: one representative cell priced directly, so
    // the artifact carries absolute plan numbers, not just wall times.
    let platform = Platform::big_basin(Bytes::from_gib(32)).with_scm(ScmDevice::optane_pmem());
    let setups = [
        (ProductionModelId::M1, 1600u64),
        (ProductionModelId::M2, 3200),
        (ProductionModelId::M3, 800),
    ];
    let mut models = Vec::new();
    for (id, batch) in setups {
        let config = production_model(id);
        let total: u64 = table_demands(&config, ADAGRAD_STATE_MULTIPLIER)
            .iter()
            .map(|d| d.bytes)
            .sum();
        let hbm = Bytes::new((total as f64 * REF_HBM_FRAC) as u64);
        let ddr = Bytes::new((hbm.as_u64() as f64 * REF_DDR_MULTIPLE) as u64);
        let row = RowShardSolver::default()
            .solve_with_caps(&config, &platform, batch, REF_ZIPF, hbm, ddr)
            .unwrap_or_else(|e| {
                eprintln!("per-row solve failed on {id:?}: {e}");
                std::process::exit(1);
            });
        let table = per_table_plan_with_caps(&config, &platform, batch, REF_ZIPF, hbm, ddr)
            .unwrap_or_else(|e| {
                eprintln!("per-table solve failed on {id:?}: {e}");
                std::process::exit(1);
            });
        let (_, _, scm_bytes) = row.bytes_per_tier();
        let advantage = if table.cost().as_secs() > 0.0 {
            1.0 - row.cost().as_secs() / table.cost().as_secs()
        } else {
            0.0
        };
        println!(
            "{id:?}: per-row {:.3} ms vs per-table {:.3} ms ({:.1}% advantage, \
             SCM {:.2} GiB) at zipf {REF_ZIPF}, HBM {:.0}% of footprint",
            row.cost().as_secs() * 1e3,
            table.cost().as_secs() * 1e3,
            advantage * 100.0,
            scm_bytes as f64 / (1u64 << 30) as f64,
            REF_HBM_FRAC * 100.0,
        );
        models.push(serde_json::json!({
            "id": format!("{id:?}"),
            "batch": batch,
            "per_row_ms": row.cost().as_secs() * 1e3,
            "per_table_ms": table.cost().as_secs() * 1e3,
            "advantage": advantage,
            "scm_bytes": scm_bytes,
            "fell_back": row.fell_back(),
        }));
    }

    let speedup = if parallel_total > 0.0 {
        serial_total / parallel_total
    } else {
        1.0
    };
    println!(
        "==== serial {serial_total:.2}s, parallel {parallel_total:.2}s on {threads} thread(s) \
         ({speedup:.2}x), outputs identical: {outputs_identical} ===="
    );

    let bench_doc = serde_json::json!({
        "schema": "recsim-bench-rowshard-v1",
        "threads": threads,
        "effort": if effort == recsim_core::Effort::Quick { "quick" } else { "full" },
        "models": models,
        "serial_wall_secs": serial_total,
        "parallel_wall_secs": parallel_total,
        "speedup": speedup,
        "outputs_identical": outputs_identical,
    });
    let root = recsim_verify::lint::workspace_root().unwrap_or_else(|| ".".into());
    let bench_path = root.join("BENCH_rowshard.json");
    match serde_json::to_string_pretty(&bench_doc) {
        Ok(json) => match std::fs::write(&bench_path, json + "\n") {
            Ok(()) => println!("(rowshard baseline written to {})", bench_path.display()),
            Err(e) => {
                eprintln!("could not write {}: {e}", bench_path.display());
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("could not serialize bench baseline: {e}");
            std::process::exit(1);
        }
    }

    if failures > 0 || !outputs_identical {
        std::process::exit(1);
    }
}
