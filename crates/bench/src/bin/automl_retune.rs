//! Regenerates the paper's automl artifact. See recsim-core::experiments::automl.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::automl::run);
}
