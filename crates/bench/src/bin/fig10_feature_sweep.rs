//! Regenerates the paper's fig10 artifact. See recsim-core::experiments::fig10.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::fig10::run);
}
