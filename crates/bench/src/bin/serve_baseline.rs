//! Runs the `serve` experiment driver twice — a timed 1-thread pass and a
//! timed parallel pass — verifies the two produce byte-identical structured
//! outputs (the serving loop is pure virtual time, so every sweep point is
//! deterministic at any width), persists the artifact under `results/`,
//! re-measures the three canonical scenarios (steady, traffic-spike,
//! model-push) for the scenario table, and records the baseline in
//! `BENCH_serve.json` at the workspace root under the
//! `recsim-bench-serve-v1` schema. Set RECSIM_QUICK=1 for the reduced
//! sweeps; RECSIM_THREADS caps the parallel pass.
use std::time::Instant;

use recsim_data::ModelConfig;
use recsim_serve::{
    simulate, BatchPolicy, CachePolicy, LatencyModel, ModelPush, ServeConfig, Spike, WorkloadConfig,
};

/// The three headline scenarios re-measured for the artifact's scenario
/// table, mirroring the driver's configurations at its knee settings.
fn scenarios() -> Vec<(&'static str, ServeConfig)> {
    let base = ServeConfig {
        workload: WorkloadConfig::steady(0xC0FFEE, 4_000.0, 1.0),
        policy: CachePolicy::Lru,
        capacity_rows: 16_384,
        batching: BatchPolicy::new(16, 2_000),
        slo_ms: 5.0,
        push: None,
    };
    vec![
        ("steady", base.clone()),
        (
            "traffic-spike",
            ServeConfig {
                workload: WorkloadConfig {
                    spike: Some(Spike {
                        start_secs: 0.4,
                        duration_secs: 0.2,
                        multiplier: 6.0,
                    }),
                    ..WorkloadConfig::steady(0x5E1C, 8_000.0, 1.0)
                },
                slo_ms: 2.0,
                ..base.clone()
            },
        ),
        (
            "model-push",
            ServeConfig {
                workload: WorkloadConfig::steady(0x9054, 8_000.0, 1.0),
                slo_ms: 2.0,
                push: Some(ModelPush {
                    at_secs: 0.5,
                    stall_us: 20_000,
                }),
                ..base
            },
        ),
    ]
}

fn main() {
    let effort = recsim_bench::effort_from_env();
    let run = recsim_core::experiments::serve::run;

    // Serial timed pass: pool pinned to one thread. This pass is rendered,
    // claim-checked, and persisted.
    recsim_pool::set_thread_override(Some(1));
    let serial_start = Instant::now();
    let serial = run(effort);
    let serial_wall = serial_start.elapsed().as_secs_f64();
    recsim_pool::set_thread_override(None);

    print!("{}", serial.render());
    println!();
    let failures = serial.failed_claims().len();
    if failures > 0 {
        eprintln!(">>> serve: {failures} claim(s) FAILED");
    }
    if let Err(e) = recsim_bench::write_artifacts(&serial, &recsim_bench::results_dir()) {
        eprintln!("{e}");
        std::process::exit(1);
    }

    // Parallel timed pass: the cache/batching grids fan across workers.
    let threads = recsim_pool::thread_count();
    println!("==== parallel re-run across {threads} thread(s) ====");
    let parallel_start = Instant::now();
    let parallel = run(effort);
    let parallel_wall = parallel_start.elapsed().as_secs_f64();

    let to_json = |out: &recsim_core::ExperimentOutput| {
        serde_json::to_string(out).expect("experiment outputs serialize")
    };
    let outputs_identical = to_json(&serial) == to_json(&parallel);
    if !outputs_identical {
        eprintln!(">>> parallel serve output differs from the 1-thread run");
    }

    let speedup = if parallel_wall > 0.0 {
        serial_wall / parallel_wall
    } else {
        1.0
    };
    println!(
        "==== serial {serial_wall:.2}s, parallel {parallel_wall:.2}s on {threads} thread(s) \
         ({speedup:.2}x), outputs identical: {outputs_identical} ===="
    );
    // Same gate as `all_experiments`: the pooled pass must not lose to the
    // serial one, but only when the pool can actually dispatch workers.
    let hardware = std::thread::available_parallelism().map_or(1, usize::from);
    let mut regression = false;
    if threads.min(hardware) > 1 && speedup < 1.0 {
        eprintln!(">>> parallel pass regressed below serial ({speedup:.2}x < 1.00x)");
        regression = true;
    }

    // The scenario table: headline tail-latency numbers per scenario, so a
    // serving regression is visible in the diff of the re-recorded file.
    let model = ModelConfig::test_suite(8, 4, 65_536, &[64, 32]);
    let latency = LatencyModel::closed_form(&model);
    let scenario_docs: Vec<serde_json::Value> = scenarios()
        .iter()
        .map(|(id, cfg)| {
            let report = simulate(&model, cfg, &latency);
            println!(
                "{id:<14} offered {:>6.0} rps  goodput {:>6.0} rps  p50 {:>7.3} ms  \
                 p99 {:>7.3} ms  p999 {:>7.3} ms  slo {:>5.1}%  hits {:>5.1}%",
                report.offered_rps,
                report.goodput_rps,
                report.p50_ms,
                report.p99_ms,
                report.p999_ms,
                report.slo_attainment * 100.0,
                report.hit_rate * 100.0,
            );
            serde_json::json!({
                "id": id,
                "offered_rps": report.offered_rps,
                "goodput_rps": report.goodput_rps,
                "p50_ms": report.p50_ms,
                "p99_ms": report.p99_ms,
                "p999_ms": report.p999_ms,
                "slo_attainment": report.slo_attainment,
                "hit_rate": report.hit_rate,
            })
        })
        .collect();

    let bench_doc = serde_json::json!({
        "schema": recsim_verify::lint::artifacts::SERVE_SCHEMA,
        "effort": if effort == recsim_core::Effort::Quick { "quick" } else { "full" },
        "threads": threads,
        "scenarios": scenario_docs,
        "serial_wall_secs": serial_wall,
        "parallel_wall_secs": parallel_wall,
        "speedup": speedup,
        "outputs_identical": outputs_identical,
    });
    let root = recsim_verify::lint::workspace_root().unwrap_or_else(|| ".".into());
    let bench_path = root.join("BENCH_serve.json");
    match serde_json::to_string_pretty(&bench_doc) {
        Ok(json) => match std::fs::write(&bench_path, json + "\n") {
            Ok(()) => println!("(serve baseline written to {})", bench_path.display()),
            Err(e) => {
                eprintln!("could not write {}: {e}", bench_path.display());
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("could not serialize serve baseline: {e}");
            std::process::exit(1);
        }
    }

    if failures > 0 || !outputs_identical || regression {
        std::process::exit(1);
    }
}
