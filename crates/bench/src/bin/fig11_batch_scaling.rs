//! Regenerates the paper's fig11 artifact. See recsim-core::experiments::fig11.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::fig11::run);
}
