//! Regenerates the paper's fig09 artifact. See recsim-core::experiments::fig09.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::fig09::run);
}
