//! Regenerates the locality study. See recsim-core::experiments::locality.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::locality::run);
}
