//! Runs every experiment driver twice — a timed serial pass and a timed
//! parallel pass through `recsim_core::experiments::run_all` — verifies the
//! two produce byte-identical structured outputs, summarizes which paper
//! claims reproduce, prints the per-driver wall-clock table to stdout
//! (unconditionally, so a perf-smoke failure is diagnosable from the CI log
//! alone), writes a consolidated `results/REPORT.md` plus `timings.json`
//! under the results dir, re-times the batch-shard training drivers
//! (`automl`, `fig15`) at the pool's width and gates their fan-out speedup
//! at >= 1.0 on multi-core hosts, and records the speedup baseline in
//! `BENCH_sweeps.json` at the workspace root (schema documented in
//! `recsim_bench`). Set RECSIM_QUICK=1 for the reduced scale;
//! RECSIM_THREADS caps the parallel pass.
use std::time::Instant;

fn main() {
    let effort = recsim_bench::effort_from_env();
    let threads = recsim_pool::thread_count();
    let mut failures = 0usize;
    let mut total_claims = 0usize;
    let mut report = String::from(
        "# recsim — consolidated experiment report\n\n\
         Regenerated results for every artifact of *Understanding Training \
         Efficiency of Deep Learning Recommendation Models at Scale* (HPCA \
         2021). See EXPERIMENTS.md for the paper-vs-measured comparison.\n\n",
    );

    // Serial timed pass: one driver at a time, in registry order. This is
    // the pass whose outputs are rendered, persisted, and claim-checked.
    let mut serial_outputs = Vec::new();
    let mut driver_times: Vec<(&'static str, f64)> = Vec::new();
    let serial_start = Instant::now();
    for (id, driver) in recsim_core::experiments::registry() {
        let t = Instant::now();
        let out = driver(effort);
        driver_times.push((id, t.elapsed().as_secs_f64()));
        print!("{}", out.render());
        println!();
        total_claims += out.claims.len();
        let failed = out.failed_claims().len();
        if failed > 0 {
            eprintln!(">>> {id}: {failed} claim(s) FAILED");
            failures += failed;
        }
        report.push_str(&format!("## {} — {}\n\n", out.id, out.title));
        for table in &out.tables {
            report.push_str(&table.to_string());
            report.push('\n');
        }
        for claim in &out.claims {
            report.push_str(&format!(
                "- **[{}]** {}\n    - observed: {}\n",
                if claim.holds { "ok" } else { "FAIL" },
                claim.statement,
                claim.observed
            ));
        }
        for note in &out.notes {
            report.push_str(&format!("- *note: {note}*\n"));
        }
        report.push('\n');
        if let Err(e) = recsim_bench::write_artifacts(&out, &recsim_bench::results_dir()) {
            eprintln!("{e}");
            std::process::exit(1);
        }
        serial_outputs.push((id, out));
    }
    let serial_total = serial_start.elapsed().as_secs_f64();

    // Parallel timed pass: whole drivers (and their inner grids) fan across
    // the recsim-pool workers.
    println!("==== parallel re-run across {threads} thread(s) ====");
    let parallel_start = Instant::now();
    let parallel_outputs = recsim_core::experiments::run_all(effort);
    let parallel_total = parallel_start.elapsed().as_secs_f64();

    // Determinism check: the parallel pass must be byte-identical to the
    // serial one once serialized.
    let to_json = |out: &recsim_core::ExperimentOutput| {
        serde_json::to_string(out).expect("experiment outputs serialize")
    };
    let mut outputs_identical = serial_outputs.len() == parallel_outputs.len();
    for ((sid, sout), (pid, pout)) in serial_outputs.iter().zip(&parallel_outputs) {
        if sid != pid || to_json(sout) != to_json(pout) {
            eprintln!(">>> parallel output for `{sid}` differs from the serial run");
            outputs_identical = false;
        }
    }

    let speedup = if parallel_total > 0.0 {
        serial_total / parallel_total
    } else {
        1.0
    };
    println!(
        "==== serial {serial_total:.2}s, parallel {parallel_total:.2}s on {threads} thread(s) \
         ({speedup:.2}x), outputs identical: {outputs_identical} ===="
    );
    // The pooled pass must never lose to the serial one: sub-threshold grids
    // run inline (`sweep_compact`), so pool dispatch only remains where the
    // work amortizes it. The gate arms only when the pool can actually
    // dispatch workers (requested threads AND cores both > 1) — on a
    // single-core host both passes take the same inline path and the ratio
    // is pure timing noise.
    let hardware = std::thread::available_parallelism().map_or(1, usize::from);
    let mut regression = false;
    if threads.min(hardware) > 1 && speedup < 1.0 {
        eprintln!(">>> parallel pass regressed below serial ({speedup:.2}x < 1.00x)");
        regression = true;
    }

    // Per-driver wall-clock table (slowest first), printed unconditionally:
    // when the CI perf smoke trips its budget, the log alone must show
    // which driver ate the time.
    let mut timings: Vec<(&str, f64)> = driver_times.clone();
    timings.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let mut timing_table = recsim_metrics::Table::new(vec!["driver", "serial s", "share"]);
    for (id, secs) in &timings {
        timing_table.push_row(vec![
            (*id).to_string(),
            format!("{secs:.3}"),
            format!(
                "{:.1}%",
                if serial_total > 0.0 {
                    secs / serial_total * 100.0
                } else {
                    0.0
                }
            ),
        ]);
    }
    println!("per-driver wall clock:\n{timing_table}");

    // Batch-shard fan-out gate: the training drivers (`automl`, `fig15`)
    // parallelize *inside* the trainer (batch shards across workers), so
    // the whole-registry speedup above can mask a fan-out regression. Time
    // each at the pool's width against its serial pass. The gate arms only
    // with real parallelism available — on a single-core host the shards
    // run inline and the ratio is timing noise.
    let mut fanout: Vec<(&str, f64, f64, f64)> = Vec::new();
    for (id, driver) in recsim_core::experiments::registry() {
        if id != "automl" && id != "fig15" {
            continue;
        }
        let serial_secs = driver_times
            .iter()
            .find(|(tid, _)| *tid == id)
            .map_or(0.0, |(_, s)| *s);
        let t = Instant::now();
        let _ = driver(effort);
        let fan_secs = t.elapsed().as_secs_f64();
        let fan_speedup = if fan_secs > 0.0 {
            serial_secs / fan_secs
        } else {
            1.0
        };
        println!(
            "batch-shard fan-out `{id}`: serial {serial_secs:.2}s, {threads}-thread \
             {fan_secs:.2}s ({fan_speedup:.2}x)"
        );
        if threads.min(hardware) > 1 && fan_speedup < 1.0 {
            eprintln!(">>> `{id}` batch-shard fan-out regressed ({fan_speedup:.2}x < 1.00x)");
            regression = true;
        }
        fanout.push((id, serial_secs, fan_secs, fan_speedup));
    }

    // Per-driver timings artifact (same `recsim-run-timings-v1` shape the
    // CLI's `run --all` writes): the CI fan-out step uploads this.
    let results = recsim_bench::results_dir();
    if let Err(e) = std::fs::create_dir_all(&results) {
        eprintln!("could not create results dir {}: {e}", results.display());
        std::process::exit(1);
    }
    let timings_doc = serde_json::json!({
        "schema": "recsim-run-timings-v1",
        "threads": threads,
        "total_wall_secs": serial_total,
        "drivers": timings
            .iter()
            .map(|(id, secs)| serde_json::json!({ "driver": id, "wall_secs": secs }))
            .collect::<Vec<_>>(),
        "fanout": fanout
            .iter()
            .map(|(id, serial_secs, fan_secs, fan_speedup)| serde_json::json!({
                "driver": id,
                "serial_secs": serial_secs,
                "parallel_secs": fan_secs,
                "speedup": fan_speedup,
            }))
            .collect::<Vec<_>>(),
    });
    let timings_path = results.join("timings.json");
    match serde_json::to_string_pretty(&timings_doc) {
        Ok(json) => match std::fs::write(&timings_path, json + "\n") {
            Ok(()) => println!("(timings written to {})", timings_path.display()),
            Err(e) => {
                eprintln!("could not write {}: {e}", timings_path.display());
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("could not serialize timings: {e}");
            std::process::exit(1);
        }
    }

    // Persist the speedup baseline next to the workspace manifest.
    let bench_doc = serde_json::json!({
        "schema": "recsim-bench-sweeps-v1",
        "threads": threads,
        "effort": if effort == recsim_core::Effort::Quick { "quick" } else { "full" },
        "drivers": driver_times
            .iter()
            .map(|(id, secs)| serde_json::json!({ "id": id, "serial_secs": secs }))
            .collect::<Vec<_>>(),
        "serial_total_secs": serial_total,
        "parallel_total_secs": parallel_total,
        "speedup": speedup,
        "outputs_identical": outputs_identical,
    });
    let root = recsim_verify::lint::workspace_root().unwrap_or_else(|| ".".into());
    let bench_path = root.join("BENCH_sweeps.json");
    match serde_json::to_string_pretty(&bench_doc) {
        Ok(json) => match std::fs::write(&bench_path, json + "\n") {
            Ok(()) => println!("(sweep baseline written to {})", bench_path.display()),
            Err(e) => {
                eprintln!("could not write {}: {e}", bench_path.display());
                std::process::exit(1);
            }
        },
        Err(e) => {
            eprintln!("could not serialize bench baseline: {e}");
            std::process::exit(1);
        }
    }

    report.push_str(&format!(
        "---\n\n**{}/{total_claims} claims hold.**\n",
        total_claims - failures
    ));
    let dir = recsim_bench::results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("could not create results dir {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join("REPORT.md");
    match std::fs::write(&path, &report) {
        Ok(()) => println!("(consolidated report written to {})", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    println!(
        "==== summary: {}/{total_claims} claims hold ====",
        total_claims - failures
    );
    if failures > 0 || !outputs_identical || regression {
        std::process::exit(1);
    }
}
