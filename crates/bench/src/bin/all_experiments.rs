//! Runs every experiment driver in sequence, summarizes which paper claims
//! reproduce, and writes a consolidated `results/REPORT.md`. Set
//! RECSIM_QUICK=1 for the reduced scale.
fn main() {
    let effort = recsim_bench::effort_from_env();
    let mut failures = 0usize;
    let mut total_claims = 0usize;
    let mut report = String::from(
        "# recsim — consolidated experiment report\n\n\
         Regenerated results for every artifact of *Understanding Training \
         Efficiency of Deep Learning Recommendation Models at Scale* (HPCA \
         2021). See EXPERIMENTS.md for the paper-vs-measured comparison.\n\n",
    );
    for (id, driver) in recsim_core::experiments::registry() {
        let out = driver(effort);
        print!("{}", out.render());
        println!();
        total_claims += out.claims.len();
        let failed = out.failed_claims().len();
        if failed > 0 {
            eprintln!(">>> {id}: {failed} claim(s) FAILED");
            failures += failed;
        }
        report.push_str(&format!("## {} — {}\n\n", out.id, out.title));
        for table in &out.tables {
            report.push_str(&table.to_string());
            report.push('\n');
        }
        for claim in &out.claims {
            report.push_str(&format!(
                "- **[{}]** {}\n    - observed: {}\n",
                if claim.holds { "ok" } else { "FAIL" },
                claim.statement,
                claim.observed
            ));
        }
        for note in &out.notes {
            report.push_str(&format!("- *note: {note}*\n"));
        }
        report.push('\n');
        let dir = recsim_bench::results_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            if let Ok(json) = serde_json::to_string_pretty(&out) {
                let _ = std::fs::write(dir.join(format!("{}.json", out.id)), json);
            }
            for (i, figure) in out.figures.iter().enumerate() {
                let _ = std::fs::write(
                    dir.join(format!("{}_fig{}.csv", out.id, i)),
                    figure.to_csv(),
                );
            }
        }
    }
    report.push_str(&format!(
        "---\n\n**{}/{total_claims} claims hold.**\n",
        total_claims - failures
    ));
    let dir = recsim_bench::results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join("REPORT.md");
        if std::fs::write(&path, &report).is_ok() {
            println!("(consolidated report written to {})", path.display());
        }
    }
    println!("==== summary: {}/{total_claims} claims hold ====", total_claims - failures);
    if failures > 0 {
        std::process::exit(1);
    }
}
