//! Regenerates the paper's table3 artifact. See recsim-core::experiments::table3.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::table3::run);
}
