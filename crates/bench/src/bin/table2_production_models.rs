//! Regenerates the paper's table2 artifact. See recsim-core::experiments::table2.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::table2::run);
}
