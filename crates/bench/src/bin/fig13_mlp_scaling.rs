//! Regenerates the paper's fig13 artifact. See recsim-core::experiments::fig13.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::fig13::run);
}
