//! Regenerates the paper's fig15 artifact. See recsim-core::experiments::fig15.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::fig15::run);
}
