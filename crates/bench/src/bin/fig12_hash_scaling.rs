//! Regenerates the paper's fig12 artifact. See recsim-core::experiments::fig12.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::fig12::run);
}
