//! Regenerates the paper's fig01 artifact. See recsim-core::experiments::fig01.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::fig01::run);
}
