//! Regenerates the paper's fig14 artifact. See recsim-core::experiments::fig14.
fn main() {
    recsim_bench::run_and_report(recsim_core::experiments::fig14::run);
}
