//! Property tests for the serving tier (ISSUE 9 satellite): (i) LRU and
//! perfect-LFU are stack algorithms, so on any trace their hit count is
//! monotone non-decreasing in capacity; (ii) the top-k-by-frequency static
//! set is hit-optimal among all same-size static sets; (iii) cache
//! processing of a fixed trace is byte-identical across runs, eviction
//! order included; (iv) the micro-batcher covers every request exactly
//! once and never completes a request before it arrives.

use proptest::prelude::*;
use recsim_serve::{
    assemble_and_serve, optimal_static_set, row_key, static_hits, BatchPolicy, CachePolicy,
    EmbeddingCache, RowKey,
};
use std::collections::BTreeSet;

/// Expands compact `(feature, row)` draws into a cache probe trace.
fn trace_of(draws: &[(u32, u64)]) -> Vec<RowKey> {
    draws.iter().map(|&(f, r)| row_key(f % 4, r % 64)).collect()
}

/// Runs one policy over a trace and returns `(hits, eviction digest)`.
fn run_policy(policy: CachePolicy, capacity: usize, trace: &[RowKey]) -> (u64, u64) {
    let mut cache = EmbeddingCache::new(policy, capacity);
    for &key in trace {
        cache.lookup(key);
    }
    (cache.hits(), cache.eviction_digest())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (i) Stack-algorithm inclusion: growing the cache never loses hits.
    #[test]
    fn hit_count_is_monotone_in_capacity(
        draws in proptest::collection::vec((0u32..8, 0u64..512), 1..400),
    ) {
        let trace = trace_of(&draws);
        for policy in [CachePolicy::Lru, CachePolicy::Lfu] {
            let mut last = 0u64;
            for capacity in [1usize, 2, 4, 8, 16, 32, 64, 256] {
                let (hits, _) = run_policy(policy, capacity, &trace);
                prop_assert!(
                    hits >= last,
                    "{policy:?} lost hits growing to {capacity}: {hits} < {last}"
                );
                last = hits;
            }
        }
    }

    /// (ii) The top-k-by-frequency set maximizes static hits: no other
    /// same-size subset of the trace's keys scores more.
    #[test]
    fn optimal_static_set_beats_arbitrary_sets(
        draws in proptest::collection::vec((0u32..8, 0u64..512), 1..300),
        picks in proptest::collection::vec(0usize..1_000, 0..12),
        k in 1usize..24,
    ) {
        let trace = trace_of(&draws);
        let best = optimal_static_set(&trace, k);
        prop_assert!(best.len() <= k);
        // A rival set of the same size, sampled from the trace's own keys
        // (any superset-free choice outside the trace can only do worse).
        let rival: BTreeSet<RowKey> = picks
            .iter()
            .map(|&i| trace[i % trace.len()])
            .take(k)
            .collect();
        prop_assert!(
            static_hits(&trace, &best) >= static_hits(&trace, &rival),
            "top-k set lost to a rival of size {}",
            rival.len()
        );
    }

    /// (iii) Replays of the same trace agree byte for byte — hit counts
    /// and the order-sensitive eviction digest.
    #[test]
    fn cache_processing_is_deterministic(
        draws in proptest::collection::vec((0u32..8, 0u64..512), 1..400),
        capacity in 1usize..64,
    ) {
        let trace = trace_of(&draws);
        for policy in [CachePolicy::Lru, CachePolicy::Lfu] {
            let a = run_policy(policy, capacity, &trace);
            let b = run_policy(policy, capacity, &trace);
            prop_assert_eq!(a, b, "{:?} replay diverged", policy);
        }
    }

    /// (iv) The batcher partitions the trace: every request is in exactly
    /// one batch, batches are contiguous, and completions respect both
    /// arrival order and the arrival time itself.
    #[test]
    fn batcher_covers_every_request_exactly_once(
        gaps in proptest::collection::vec(0u64..5_000, 1..300),
        max_batch in 1usize..32,
        max_delay in 0u64..10_000,
        service in 1u64..2_000,
    ) {
        let mut arrivals = Vec::with_capacity(gaps.len());
        let mut t = 0u64;
        for gap in gaps {
            t += gap;
            arrivals.push(t);
        }
        let (batches, completions) =
            assemble_and_serve(&arrivals, BatchPolicy::new(max_batch, max_delay), |len, _| {
                service * len as u64
            });
        let covered: usize = batches.iter().map(|b| b.len).sum();
        prop_assert_eq!(covered, arrivals.len());
        prop_assert_eq!(batches.first().map_or(0, |b| b.start), 0);
        for w in batches.windows(2) {
            prop_assert_eq!(w[0].start + w[0].len, w[1].start);
        }
        for (i, (&arrival, &done)) in arrivals.iter().zip(&completions).enumerate() {
            prop_assert!(done > arrival, "request {i} completed before arriving");
        }
        for w in completions.windows(2) {
            prop_assert!(w[0] <= w[1], "completions must be non-decreasing");
        }
    }
}
