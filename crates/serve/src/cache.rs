//! The embedding cache in front of the `recsim-hw` memory hierarchy.
//!
//! Inference at serving scale cannot hold every embedding table in device
//! memory; it holds a *cache* of hot rows in HBM and pays the host (or a
//! remote parameter tier) on a miss. Acun et al. show embedding access is
//! heavily skewed (Zipf popularity, Section III.A.2), which is exactly the
//! regime where a small cache absorbs most traffic. This module implements
//! the three policies the serving tier compares:
//!
//! * [`CachePolicy::Lru`] — evict the least recently used row,
//! * [`CachePolicy::Lfu`] — *perfect* LFU: frequency counts are global
//!   (kept across evictions), ties broken by recency,
//! * [`CachePolicy::StaticHot`] — a fixed hot set pinned up front; misses
//!   never insert.
//!
//! LRU and perfect LFU both order rows by a priority that is independent
//! of the cache capacity (recency; global frequency then recency), which
//! makes them *stack algorithms* in Mattson's sense: the content of a
//! size-`C` cache is always a subset of the size-`C+1` cache on the same
//! trace, so the hit rate is monotone non-decreasing in capacity. The
//! static-hot sets produced by [`optimal_static_set`] are nested by
//! construction. The proptest suite pins all three properties, plus
//! byte-determinism of the eviction order.

use std::collections::{BTreeMap, BTreeSet};

/// A cacheable embedding row: `(sparse feature, row index)` packed into a
/// single key. Feature count is tiny; rows fit easily in the low bits.
pub type RowKey = u64;

/// Packs a `(feature, row)` coordinate into a [`RowKey`].
pub fn row_key(feature: u32, row: u64) -> RowKey {
    debug_assert!(row < 1 << 48, "row index exceeds 48 bits");
    (u64::from(feature) << 48) | row
}

/// The replacement policy of an [`EmbeddingCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CachePolicy {
    /// Evict the least recently used row.
    Lru,
    /// Evict the globally least frequently used row (ties: least recent).
    Lfu,
    /// A pinned hot set; misses are priced but never inserted.
    StaticHot,
}

impl CachePolicy {
    /// Every policy, in report order.
    pub const ALL: [CachePolicy; 3] = [CachePolicy::Lru, CachePolicy::Lfu, CachePolicy::StaticHot];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            CachePolicy::Lru => "lru",
            CachePolicy::Lfu => "lfu",
            CachePolicy::StaticHot => "static-hot",
        }
    }

    /// Parses a [`CachePolicy::name`] back into a policy.
    pub fn from_name(name: &str) -> Option<CachePolicy> {
        CachePolicy::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Eviction priority: the row with the *smallest* priority leaves first.
/// For LRU this is the last-access tick; for LFU the global frequency
/// with the last-access tick as tie-break. Both orderings are independent
/// of the cache capacity, which is what makes the policies stack
/// algorithms (hit rate monotone in capacity).
fn priority(policy: CachePolicy, freq: u64, last_tick: u64) -> (u64, u64) {
    match policy {
        CachePolicy::Lru => (last_tick, 0),
        CachePolicy::Lfu => (freq, last_tick),
        CachePolicy::StaticHot => (0, 0),
    }
}

/// A fixed-capacity cache of embedding rows with deterministic eviction.
#[derive(Debug, Clone)]
pub struct EmbeddingCache {
    policy: CachePolicy,
    capacity: usize,
    /// Cached rows → their current priority (mirrored in `order`).
    entries: BTreeMap<RowKey, (u64, u64)>,
    /// Eviction index: ordered `(priority, key)` pairs; first = victim.
    order: BTreeSet<((u64, u64), RowKey)>,
    /// Global access counts — kept across evictions (perfect LFU).
    freq: BTreeMap<RowKey, u64>,
    /// Monotone access counter; unique per access, so priorities never tie.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Rolling FNV-1a digest of the eviction sequence, for determinism
    /// pinning without storing the whole sequence.
    eviction_digest: u64,
}

impl EmbeddingCache {
    /// Creates an empty LRU or LFU cache holding up to `capacity` rows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or the policy is [`CachePolicy::StaticHot`]
    /// (use [`EmbeddingCache::static_hot`]).
    pub fn new(policy: CachePolicy, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(
            policy != CachePolicy::StaticHot,
            "static-hot caches are built from a hot set"
        );
        Self::build(policy, capacity)
    }

    /// Creates a static-hot cache pinning `hot` rows (capacity = set size).
    ///
    /// # Panics
    ///
    /// Panics if the hot set is empty.
    pub fn static_hot(hot: &BTreeSet<RowKey>) -> Self {
        assert!(!hot.is_empty(), "hot set must be non-empty");
        let mut cache = Self::build(CachePolicy::StaticHot, hot.len());
        for &key in hot {
            cache.entries.insert(key, (0, 0));
        }
        cache
    }

    fn build(policy: CachePolicy, capacity: usize) -> Self {
        Self {
            policy,
            capacity,
            entries: BTreeMap::new(),
            order: BTreeSet::new(),
            freq: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            eviction_digest: 0xCBF2_9CE4_8422_2325,
        }
    }

    /// The replacement policy.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Maximum rows held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up one row, updating recency/frequency state, and returns
    /// whether it hit. A miss inserts the row (except under static-hot),
    /// evicting the lowest-priority resident if at capacity.
    pub fn lookup(&mut self, key: RowKey) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let freq = {
            let f = self.freq.entry(key).or_insert(0);
            *f += 1;
            *f
        };
        if self.policy == CachePolicy::StaticHot {
            let hit = self.entries.contains_key(&key);
            if hit {
                self.hits += 1;
            } else {
                self.misses += 1;
            }
            return hit;
        }
        let new_prio = priority(self.policy, freq, tick);
        if let Some(old_prio) = self.entries.insert(key, new_prio) {
            self.order.remove(&(old_prio, key));
            self.order.insert((new_prio, key));
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() > self.capacity {
            if let Some(&(victim_prio, victim)) = self.order.iter().next() {
                self.order.remove(&(victim_prio, victim));
                self.entries.remove(&victim);
                self.evictions += 1;
                self.eviction_digest ^= victim;
                self.eviction_digest = self.eviction_digest.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        self.order.insert((new_prio, key));
        false
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// FNV-1a digest of the eviction sequence (order-sensitive).
    pub fn eviction_digest(&self) -> u64 {
        self.eviction_digest
    }

    /// `hits / (hits + misses)`, or 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The offline-optimal static set for a trace: the `k` keys with the
/// highest access counts, ties broken by smaller key. Among *static*
/// caches of size `k` this maximizes hits on the trace it was derived
/// from (each static set's hit count is the sum of its keys' counts), and
/// the sets are nested in `k`, so the static-hot hit rate is monotone in
/// capacity by construction.
pub fn optimal_static_set(trace: &[RowKey], k: usize) -> BTreeSet<RowKey> {
    let mut counts: BTreeMap<RowKey, u64> = BTreeMap::new();
    for &key in trace {
        *counts.entry(key).or_insert(0) += 1;
    }
    let mut ranked: Vec<(RowKey, u64)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.into_iter().take(k).map(|(key, _)| key).collect()
}

/// Hits a fixed set scores on a trace (static caches have no dynamics, so
/// this is exact).
pub fn static_hits(trace: &[RowKey], set: &BTreeSet<RowKey>) -> u64 {
    trace.iter().filter(|key| set.contains(key)).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_trace(policy: CachePolicy, capacity: usize, trace: &[RowKey]) -> EmbeddingCache {
        let mut cache = EmbeddingCache::new(policy, capacity);
        for &key in trace {
            cache.lookup(key);
        }
        cache
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut cache = EmbeddingCache::new(CachePolicy::Lru, 2);
        assert!(!cache.lookup(1));
        assert!(!cache.lookup(2));
        assert!(cache.lookup(1)); // 2 is now least recent
        assert!(!cache.lookup(3)); // evicts 2
        assert!(cache.lookup(1));
        assert!(!cache.lookup(2)); // 2 was gone
        assert_eq!(cache.evictions(), 2);
    }

    #[test]
    fn lfu_keeps_frequent_rows() {
        let mut cache = EmbeddingCache::new(CachePolicy::Lfu, 2);
        for _ in 0..5 {
            cache.lookup(7);
        }
        cache.lookup(8);
        cache.lookup(9); // evicts 8 (freq 1, older than 9)
        assert!(cache.lookup(7), "hot row survived");
        assert!(!cache.lookup(8));
    }

    #[test]
    fn static_hot_never_inserts() {
        let hot: BTreeSet<RowKey> = [1, 2, 3].into_iter().collect();
        let mut cache = EmbeddingCache::static_hot(&hot);
        assert!(cache.lookup(1));
        assert!(!cache.lookup(9));
        assert!(!cache.lookup(9), "miss did not insert");
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn hit_rate_is_monotone_in_capacity_on_a_zipfish_trace() {
        // Small deterministic head-heavy trace.
        let trace: Vec<RowKey> = (0..2_000u64).map(|i| (i * i + i / 3) % 97 % 23).collect();
        for policy in [CachePolicy::Lru, CachePolicy::Lfu] {
            let mut prev = -1.0;
            for capacity in [1, 2, 4, 8, 16] {
                let cache = run_trace(policy, capacity, &trace);
                assert!(
                    cache.hit_rate() >= prev - 1e-12,
                    "{policy:?} cap {capacity}: {} < {prev}",
                    cache.hit_rate()
                );
                prev = cache.hit_rate();
            }
        }
    }

    #[test]
    fn optimal_static_set_beats_rank_order_on_this_trace() {
        let trace: Vec<RowKey> = (0..500u64).map(|i| (i * 7 + 1) % 13).collect();
        let opt = optimal_static_set(&trace, 4);
        let naive: BTreeSet<RowKey> = (0..4u64).collect();
        assert!(static_hits(&trace, &opt) >= static_hits(&trace, &naive));
    }

    #[test]
    fn eviction_digest_is_reproducible() {
        let trace: Vec<RowKey> = (0..1_000u64).map(|i| (i * 31 + 7) % 40).collect();
        let a = run_trace(CachePolicy::Lru, 8, &trace);
        let b = run_trace(CachePolicy::Lru, 8, &trace);
        assert_eq!(a.eviction_digest(), b.eviction_digest());
        assert_eq!(a.hits(), b.hits());
    }

    #[test]
    fn policy_names_round_trip() {
        for p in CachePolicy::ALL {
            assert_eq!(CachePolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(CachePolicy::from_name("arc"), None);
    }

    #[test]
    fn row_keys_separate_features() {
        assert_ne!(row_key(0, 5), row_key(1, 5));
        assert_eq!(row_key(2, 9), row_key(2, 9));
    }
}
