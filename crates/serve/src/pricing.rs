//! Pricing one micro-batch against the `recsim-hw` memory hierarchy.
//!
//! The serving knee comes from three terms with very different scales:
//!
//! * a fixed per-batch overhead (kernel launches, batching bookkeeping) —
//!   the term batching amortizes,
//! * per-example dense compute (bottom MLP, interaction, top MLP) on the
//!   accelerator's sustained FLOP rate,
//! * per-lookup embedding traffic, split by the cache: a *hit* pays one
//!   random-access row read from HBM, a *miss* pays the host DDR read
//!   plus a PCIe message to bring the row over.
//!
//! The closed form prices everything from the `recsim-hw` presets, so the
//! experiment driver is self-contained and deterministic. The CLI may
//! instead calibrate the dense term from the measured kernel baseline
//! (`BENCH_kernels.json`) via [`LatencyModel::from_kernel_bench`] — real
//! p50s replace the roofline estimate, closed form fills any gap.

use recsim_data::ModelConfig;
use recsim_hw::device::v100;
use recsim_hw::memory::{ddr4_dual_socket, hbm2_v100, AccessPattern};
use recsim_hw::units::{Bytes, Flops};
use recsim_hw::Link;
use serde::{Deserialize, Serialize};

/// Per-batch latency coefficients, all in virtual microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed cost per batch: kernel launches + batching bookkeeping.
    pub batch_overhead_us: f64,
    /// Dense forward compute per example.
    pub per_example_us: f64,
    /// One cached row: HBM random-access read.
    pub hit_us_per_lookup: f64,
    /// One missed row: host DDR random read + a PCIe message.
    pub miss_us_per_lookup: f64,
}

/// Kernel launches per forward pass the fixed overhead charges for
/// (bottom MLP, gathers, interaction, top MLP, sigmoid — a small constant).
const LAUNCHES_PER_BATCH: f64 = 12.0;

impl LatencyModel {
    /// Prices the model's forward pass on a V100-class device with host
    /// DDR behind PCIe 3 — the Big Basin inference slice.
    pub fn closed_form(model: &ModelConfig) -> Self {
        let device = v100(Bytes::from_gib(16));
        let hbm = hbm2_v100(Bytes::from_gib(16));
        let host = ddr4_dual_socket();
        let pcie = Link::pcie3_x16();
        let row = Bytes::new(model.row_bytes());

        let flops = Flops::new(model.forward_flops_per_example());
        let per_example_us = device
            .sustained_flop_rate()
            .execution_time(flops)
            .as_micros();
        let batch_overhead_us = device.kernel_overhead().as_micros() * LAUNCHES_PER_BATCH;
        let hit_us_per_lookup = hbm.access_time(row, AccessPattern::Random).as_micros();
        let miss_us_per_lookup = host.access_time(row, AccessPattern::Random).as_micros()
            + pcie.transfer_time(row, 1).as_micros();
        Self {
            batch_overhead_us,
            per_example_us,
            hit_us_per_lookup,
            miss_us_per_lookup,
        }
    }

    /// Calibrates the dense term from a measured kernel baseline
    /// (`BENCH_kernels.json`, schema `recsim-bench-kernels-v1`): the
    /// measured `linear/fwd` p50 replaces the roofline per-example cost.
    /// Returns `None` when the document does not parse or carries no
    /// usable rows; callers fall back to [`LatencyModel::closed_form`].
    pub fn from_kernel_bench(json: &str, model: &ModelConfig) -> Option<Self> {
        let doc: serde_json::Value = serde_json::from_str(json).ok()?;
        let ops = doc.get("ops")?.as_array()?;
        let p50_us = |op: &str| -> Option<f64> {
            ops.iter()
                .find(|o| o.get("op").and_then(|v| v.as_str()) == Some(op))?
                .get("p50_us")?
                .as_f64()
        };
        // The training baseline measures whole-layer GEMMs at training
        // batch sizes; per example, the forward stack costs roughly the
        // linear/fwd p50 split across the baseline batch. Conservatively
        // assume a 128-example measurement batch.
        let linear_p50 = p50_us("linear/fwd").filter(|&v| v > 0.0)?;
        let layers = (model.bottom_mlp().len() + model.top_mlp().len()).max(1) as f64;
        let per_example_us = linear_p50 * layers / 128.0;
        Some(Self {
            per_example_us,
            ..Self::closed_form(model)
        })
    }

    /// Service time of one micro-batch, microseconds.
    pub fn batch_us(&self, batch_size: usize, hits: u64, misses: u64) -> f64 {
        self.batch_overhead_us
            + self.per_example_us * batch_size as f64
            + self.hit_us_per_lookup * hits as f64
            + self.miss_us_per_lookup * misses as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelConfig {
        ModelConfig::test_suite(8, 4, 65_536, &[64, 32])
    }

    #[test]
    fn misses_cost_more_than_hits() {
        let m = LatencyModel::closed_form(&model());
        assert!(m.miss_us_per_lookup > m.hit_us_per_lookup * 5.0);
        assert!(m.batch_overhead_us > 0.0);
        assert!(m.per_example_us > 0.0);
    }

    #[test]
    fn batching_amortizes_overhead() {
        let m = LatencyModel::closed_form(&model());
        let single = m.batch_us(1, 8, 0);
        let batched = m.batch_us(32, 256, 0) / 32.0;
        assert!(
            batched < single,
            "per-example batched {batched} vs single {single}"
        );
    }

    #[test]
    fn kernel_bench_calibration_overrides_dense_term() {
        let json = r#"{"schema": "recsim-bench-kernels-v1",
            "ops": [{"op": "linear/fwd", "p50_us": 256.0}]}"#;
        // Offline stub builds cannot parse JSON at all; the calibration
        // path is exercised only where a real serde_json is linked.
        let Some(m) = LatencyModel::from_kernel_bench(json, &model()) else {
            assert!(serde_json::from_str::<serde_json::Value>("0").is_err());
            return;
        };
        let closed = LatencyModel::closed_form(&model());
        assert!((m.hit_us_per_lookup - closed.hit_us_per_lookup).abs() < 1e-12);
        assert!(m.per_example_us > 0.0);
        assert_ne!(m.per_example_us, closed.per_example_us);
    }

    #[test]
    fn malformed_bench_is_rejected() {
        assert!(LatencyModel::from_kernel_bench("{", &model()).is_none());
        assert!(LatencyModel::from_kernel_bench("{\"ops\": []}", &model()).is_none());
    }
}
