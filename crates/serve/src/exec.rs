//! The *real* serving path: forward passes of a trained [`DlrmModel`].
//!
//! The discrete-event loop in [`crate::engine`] prices latency; this
//! module actually executes the numerics the prices stand for. It walks
//! the same micro-batch schedule, assembles each batch into a
//! [`MiniBatch`] (request indices become the CSR sparse batch, dense
//! features are drawn deterministically per request), probes the
//! embedding cache, and runs the model forward. Every stage is wrapped in
//! a `prof::scope` so `recsim prof serve` and RV019 see the
//! serving operators ([`Op::ServeStep`], [`Op::ServeBatchAssemble`],
//! [`Op::ServeCacheLookup`]) exactly like the training kernels.

use recsim_data::batch::{MiniBatch, SparseBatch};
use recsim_data::ModelConfig;
use recsim_detsan::digest_f32_slice;
use recsim_fault::prng;
use recsim_model::loss::predict_probabilities;
use recsim_model::DlrmModel;
use recsim_prof::{scope, Counters, Op};
use serde::{Deserialize, Serialize};

use crate::batcher::MicroBatch;
use crate::cache::EmbeddingCache;
use crate::workload::Request;

/// What executing the schedule against the real model produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionSummary {
    /// Micro-batches executed.
    pub batches: usize,
    /// Examples scored.
    pub examples: usize,
    /// Embedding-cache hits observed on the execution pass.
    pub hits: u64,
    /// Embedding-cache misses observed on the execution pass.
    pub misses: u64,
    /// Mean predicted click probability over every scored example.
    pub mean_score: f64,
    /// Order-sensitive digest of every score, for byte-identity checks.
    pub score_digest: u64,
}

/// Runs the micro-batch schedule through the trained model.
///
/// `requests` and `batches` come straight from the simulator
/// ([`crate::workload::generate`] + [`crate::engine::simulate`]'s
/// batcher), so the executed batches are exactly the priced ones. The
/// cache is probed for its hit/miss account; rows are served from the
/// model's tables either way (the cache prices placement, it does not
/// change values).
pub fn execute_schedule(
    model: &DlrmModel,
    config: &ModelConfig,
    requests: &[Request],
    batches: &[MicroBatch],
    cache: &mut EmbeddingCache,
    seed: u64,
) -> ExecutionSummary {
    let mut examples = 0usize;
    let mut score_sum = 0.0f64;
    let mut scores: Vec<f32> = Vec::with_capacity(requests.len());

    for batch in batches {
        let members = &requests[batch.start..batch.start + batch.len];
        let _step = scope(Op::ServeStep, Counters::none());

        let minibatch = {
            let dense_elems = batch.len * config.num_dense();
            let lookups: usize = members.iter().map(Request::total_lookups).sum();
            let _assemble = scope(
                Op::ServeBatchAssemble,
                Counters::new(0, ((dense_elems + lookups) * 4) as u64),
            );
            assemble_minibatch(config, members, seed)
        };

        {
            let lookups: usize = members.iter().map(Request::total_lookups).sum();
            let _probe = scope(
                Op::ServeCacheLookup,
                Counters::embedding_forward(lookups, batch.len, config.embedding_dim()),
            );
            for request in members {
                for key in request.row_keys() {
                    cache.lookup(key);
                }
            }
        }

        let (output, _cache) = model.forward(&minibatch);
        let probs = predict_probabilities(&output);
        examples += probs.len();
        score_sum += probs.iter().map(|&s| f64::from(s)).sum::<f64>();
        scores.extend_from_slice(&probs);
    }

    ExecutionSummary {
        batches: batches.len(),
        examples,
        hits: cache.hits(),
        misses: cache.misses(),
        mean_score: if examples == 0 {
            0.0
        } else {
            score_sum / examples as f64
        },
        score_digest: digest_f32_slice(&scores),
    }
}

/// Packs one micro-batch of requests into the model's input shape.
///
/// Sparse features come verbatim from the request indices (CSR per
/// feature); dense features are drawn from the counter-keyed PRNG on
/// `(seed, request id, slot)` so the batch is a pure function of its
/// requests — the same request scores identically wherever it lands.
fn assemble_minibatch(config: &ModelConfig, members: &[Request], seed: u64) -> MiniBatch {
    let num_dense = config.num_dense();
    let dense_stream = prng::stream_id("serve/dense");
    let mut dense = Vec::with_capacity(members.len() * num_dense);
    for request in members {
        for slot in 0..num_dense {
            let draw = request.id * num_dense as u64 + slot as u64;
            dense.push(prng::unit_f64(seed, dense_stream, draw) as f32);
        }
    }

    let sparse: Vec<SparseBatch> = (0..config.sparse_features().len())
        .map(|f| {
            let mut offsets = Vec::with_capacity(members.len() + 1);
            let mut indices = Vec::new();
            offsets.push(0);
            for request in members {
                indices.extend_from_slice(&request.indices[f]);
                offsets.push(indices.len());
            }
            SparseBatch::new(offsets, indices)
        })
        .collect();

    // Labels are unused by the forward pass; zero-fill to satisfy shape.
    let labels = vec![0.0f32; members.len()];
    MiniBatch::new(members.len(), num_dense, dense, sparse, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::{assemble_and_serve, BatchPolicy};
    use crate::cache::CachePolicy;
    use crate::workload::{generate, WorkloadConfig};

    fn setup() -> (ModelConfig, DlrmModel, Vec<Request>, Vec<MicroBatch>) {
        let config = ModelConfig::test_suite(8, 4, 2_048, &[16, 8]);
        let model = DlrmModel::new(&config, 7);
        let requests = generate(&WorkloadConfig::steady(3, 400.0, 0.5), &config);
        let arrivals: Vec<u64> = requests.iter().map(|r| r.arrival_us).collect();
        let (batches, _) = assemble_and_serve(&arrivals, BatchPolicy::new(8, 1_000), |_, _| 100);
        (config, model, requests, batches)
    }

    #[test]
    fn execution_is_deterministic_and_covers_every_request() {
        let (config, model, requests, batches) = setup();
        let mut run = || {
            let mut cache = EmbeddingCache::new(CachePolicy::Lru, 256);
            execute_schedule(&model, &config, &requests, &batches, &mut cache, 11)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.examples, requests.len());
        assert_eq!(a.batches, batches.len());
        assert!(a.mean_score > 0.0 && a.mean_score < 1.0);
        assert!(a.hits + a.misses > 0);
    }

    #[test]
    fn scores_are_probabilities() {
        let (config, model, requests, batches) = setup();
        let mut cache = EmbeddingCache::new(CachePolicy::Lfu, 128);
        let summary = execute_schedule(&model, &config, &requests, &batches, &mut cache, 11);
        assert_ne!(summary.score_digest, 0);
    }
}
