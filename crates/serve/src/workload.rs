//! The open-loop request generator.
//!
//! Serving load is *open loop*: users do not wait for the previous request
//! to finish before issuing the next one, so arrivals are an exogenous
//! point process and queueing delay compounds under overload (the regime
//! tail-latency SLOs are about). Arrivals here are a Poisson process whose
//! instantaneous rate is modulated by a diurnal curve
//! ([`recsim_data::arrival::DiurnalProfile`]) and an optional traffic
//! spike; inter-arrival gaps are drawn with the counter-keyed exponential
//! from `recsim_fault::prng`, so the whole trace is a pure function of the
//! seed. Each request's embedding rows come from per-feature Zipf
//! popularity ([`recsim_data::arrival::PopularityProcess`]), keyed by
//! `(seed, request, feature, draw)`.

use recsim_data::arrival::{DiurnalProfile, PopularityProcess};
use recsim_data::ModelConfig;
use recsim_fault::prng;
use serde::{Deserialize, Serialize};

use crate::cache::{row_key, RowKey};

/// The arrival process shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson at the base rate.
    Poisson,
    /// Poisson with a diurnal rate curve.
    Diurnal {
        /// Peak rate over trough rate (`>= 1`).
        peak_to_trough: f64,
        /// Period of the daily curve, virtual seconds.
        period_secs: f64,
    },
}

/// A transient traffic spike: the rate multiplies by `multiplier` over
/// `[start_secs, start_secs + duration_secs)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spike {
    /// Spike onset, virtual seconds.
    pub start_secs: f64,
    /// Spike length, virtual seconds.
    pub duration_secs: f64,
    /// Rate multiplier during the spike.
    pub multiplier: f64,
}

/// Everything the generator needs to expand a request trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Master seed; every draw is keyed on it.
    pub seed: u64,
    /// Base arrival rate, requests per virtual second.
    pub base_rps: f64,
    /// Horizon: requests arriving past this are not generated.
    pub duration_secs: f64,
    /// Arrival process shape.
    pub arrival: ArrivalProcess,
    /// Zipf exponent of row popularity per sparse feature.
    pub zipf_exponent: f64,
    /// Embedding lookups per sparse feature per request.
    pub lookups_per_feature: usize,
    /// Optional transient traffic spike.
    pub spike: Option<Spike>,
}

impl WorkloadConfig {
    /// A steady 2000-rps workload over `duration_secs` — the baseline the
    /// driver and CLI sweeps perturb.
    pub fn steady(seed: u64, base_rps: f64, duration_secs: f64) -> Self {
        Self {
            seed,
            base_rps,
            duration_secs,
            arrival: ArrivalProcess::Poisson,
            zipf_exponent: 1.1,
            lookups_per_feature: 2,
            spike: None,
        }
    }

    /// The instantaneous arrival rate at virtual time `t_secs`.
    pub fn rate_at(&self, t_secs: f64) -> f64 {
        let diurnal = match self.arrival {
            ArrivalProcess::Poisson => 1.0,
            ArrivalProcess::Diurnal {
                peak_to_trough,
                period_secs,
            } => DiurnalProfile::new(peak_to_trough, period_secs).factor_at(t_secs),
        };
        let spike = match self.spike {
            Some(s) if (s.start_secs..s.start_secs + s.duration_secs).contains(&t_secs) => {
                s.multiplier
            }
            _ => 1.0,
        };
        self.base_rps * diurnal * spike
    }
}

/// One inference request: arrival time plus the embedding rows it
/// activates, one index list per sparse feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Sequence number (also the per-request randomness coordinate).
    pub id: u64,
    /// Arrival time, virtual microseconds.
    pub arrival_us: u64,
    /// Activated rows, `indices[feature][draw]`, each `< hash_size`.
    pub indices: Vec<Vec<u32>>,
}

impl Request {
    /// The request's lookups as packed cache keys, feature-major.
    pub fn row_keys(&self) -> impl Iterator<Item = RowKey> + '_ {
        self.indices
            .iter()
            .enumerate()
            .flat_map(|(f, rows)| rows.iter().map(move |&r| row_key(f as u32, u64::from(r))))
    }

    /// Total embedding lookups in this request.
    pub fn total_lookups(&self) -> usize {
        self.indices.iter().map(Vec::len).sum()
    }
}

/// Expands the workload into an arrival-ordered request trace.
///
/// Arrivals integrate inter-arrival gaps drawn at the *current* rate
/// (a step-wise inhomogeneous Poisson process); indices come from one
/// [`PopularityProcess`] per sparse feature. Both are pure functions of
/// `(config, model)`, so the trace is byte-identical on every run.
pub fn generate(config: &WorkloadConfig, model: &ModelConfig) -> Vec<Request> {
    let stream = prng::stream_id("serve/arrivals");
    let popularity: Vec<PopularityProcess> = model
        .sparse_features()
        .iter()
        .enumerate()
        .map(|(f, spec)| {
            PopularityProcess::new(
                spec.hash_size(),
                config.zipf_exponent,
                prng::splitmix64(config.seed ^ prng::stream_id("serve/popularity") ^ f as u64),
            )
        })
        .collect();

    let mut out = Vec::new();
    let mut t_secs = 0.0_f64;
    let mut id = 0_u64;
    let horizon = config.duration_secs;
    loop {
        let rate = config.rate_at(t_secs).max(1e-9);
        t_secs += prng::exponential(config.seed, stream, id, 1.0 / rate);
        if t_secs >= horizon {
            break;
        }
        let indices: Vec<Vec<u32>> = popularity
            .iter()
            .map(|pop| {
                // Entity = request id: each request draws a fresh ranked
                // sample, feature-independent via the per-feature seed.
                pop.sample_many(id, config.lookups_per_feature)
                    .into_iter()
                    .map(|r| r as u32)
                    .collect()
            })
            .collect();
        out.push(Request {
            id,
            arrival_us: (t_secs * 1e6) as u64,
            indices,
        });
        id += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelConfig {
        ModelConfig::test_suite(8, 4, 4_096, &[32, 16])
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::steady(7, 500.0, 2.0);
        let a = generate(&cfg, &model());
        let b = generate(&cfg, &model());
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn rate_roughly_matches_request_count() {
        let cfg = WorkloadConfig::steady(3, 1_000.0, 4.0);
        let n = generate(&cfg, &model()).len() as f64;
        let expected = 4_000.0;
        assert!(
            (n - expected).abs() < expected * 0.1,
            "{n} requests for expected {expected}"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_within_horizon() {
        let cfg = WorkloadConfig::steady(11, 800.0, 1.0);
        let reqs = generate(&cfg, &model());
        assert!(reqs.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
        assert!(reqs.iter().all(|r| r.arrival_us < 1_000_000));
        assert!(reqs.iter().all(|r| r.indices.len() == 4));
        assert!(reqs.iter().all(|r| r.total_lookups() == 8));
    }

    #[test]
    fn spike_adds_requests_in_its_window() {
        let base = WorkloadConfig::steady(5, 500.0, 3.0);
        let spiked = WorkloadConfig {
            spike: Some(Spike {
                start_secs: 1.0,
                duration_secs: 1.0,
                multiplier: 4.0,
            }),
            ..base.clone()
        };
        let in_window = |reqs: &[Request]| {
            reqs.iter()
                .filter(|r| (1_000_000..2_000_000).contains(&r.arrival_us))
                .count()
        };
        let n_base = in_window(&generate(&base, &model()));
        let n_spiked = in_window(&generate(&spiked, &model()));
        assert!(
            n_spiked as f64 > n_base as f64 * 2.0,
            "spike window: {n_spiked} vs base {n_base}"
        );
    }

    #[test]
    fn diurnal_rate_oscillates() {
        let cfg = WorkloadConfig {
            arrival: ArrivalProcess::Diurnal {
                peak_to_trough: 3.0,
                period_secs: 2.0,
            },
            ..WorkloadConfig::steady(1, 100.0, 2.0)
        };
        let peak = cfg.rate_at(0.5);
        let trough = cfg.rate_at(1.5);
        assert!((peak / trough - 3.0).abs() < 1e-9, "{peak} / {trough}");
    }
}
