//! The discrete-event serving loop and its report.
//!
//! Everything runs in *virtual* time: arrivals come pre-timestamped from
//! the workload generator, the batcher/server loop advances a single
//! virtual clock, and per-batch service times come from the closed-form
//! [`LatencyModel`]. No wall clock anywhere — the loop is a pure function
//! of its configuration, byte-identical at any thread count, which is
//! what lets the experiment driver sweep it under `recsim-pool` and the
//! detsan matrix pin it. Stage digests (`serve/arrivals`, `serve/cache`,
//! `serve/latency`) are recorded through `recsim-detsan` so a divergence
//! localizes to the first differing stage.

use recsim_data::ModelConfig;
use recsim_detsan::StateDigest;
use recsim_metrics::quantile;
use recsim_trace::{TaskCategory, TraceRecorder, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

use crate::batcher::{assemble_and_serve, BatchPolicy, MicroBatch};
use crate::cache::{optimal_static_set, CachePolicy, EmbeddingCache, RowKey};
use crate::pricing::LatencyModel;
use crate::workload::{generate, Request, WorkloadConfig};

/// A model-update push: at `at_secs` the server swaps in a freshly
/// trained model, stalling for the weight transfer and starting cold
/// (the cache is flushed — new weights invalidate cached rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelPush {
    /// Push instant, virtual seconds.
    pub at_secs: f64,
    /// Stall while the new weights stream in, virtual microseconds.
    pub stall_us: u64,
}

/// One serving scenario: workload, cache, batching, SLO, optional push.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// The open-loop load.
    pub workload: WorkloadConfig,
    /// Cache replacement policy.
    pub policy: CachePolicy,
    /// Cache capacity in rows.
    pub capacity_rows: usize,
    /// Micro-batching policy.
    pub batching: BatchPolicy,
    /// The latency SLO requests must finish under to count as goodput.
    pub slo_ms: f64,
    /// Optional mid-run model swap.
    pub push: Option<ModelPush>,
}

/// What one serving run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Requests generated (and served — the loop drains the trace).
    pub requests: usize,
    /// Micro-batches formed.
    pub batches: usize,
    /// Mean batch size.
    pub mean_batch: f64,
    /// Virtual horizon of the workload, seconds.
    pub duration_secs: f64,
    /// Offered load, requests per second.
    pub offered_rps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile request latency, milliseconds.
    pub p999_ms: f64,
    /// Embedding-cache hit rate over the run.
    pub hit_rate: f64,
    /// Cache evictions over the run.
    pub evictions: u64,
    /// The SLO the run was scored against, milliseconds.
    pub slo_ms: f64,
    /// Fraction of requests completing within the SLO.
    pub slo_attainment: f64,
    /// Requests per second completing within the SLO — the serving
    /// analogue of the training goodput metric.
    pub goodput_rps: f64,
    /// Critical-path style attribution of served time: fractional shares
    /// per `recsim-trace` category (embedding lookups split hit/miss via
    /// `EmbeddingLookup`/`PcieTransfer`, dense compute as `MlpCompute`,
    /// batch wait as `HostStaging`, push stall as `Recovery`).
    pub attribution: Vec<(String, f64)>,
    /// Before/after latency of a model push, when one was configured.
    pub push: Option<PushReport>,
}

/// Latency around a model push.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PushReport {
    /// p99 over requests arriving before the push, milliseconds.
    pub pre_p99_ms: f64,
    /// p99 over the first post-push window (cold cache), milliseconds.
    pub post_p99_ms: f64,
    /// Hit rate before the push.
    pub pre_hit_rate: f64,
    /// Hit rate after the push (cold start included).
    pub post_hit_rate: f64,
    /// The stall the weight transfer imposed, milliseconds.
    pub stall_ms: f64,
}

/// The request trace and micro-batch schedule that [`simulate`] prices,
/// for callers that want to run the same schedule for real
/// ([`crate::exec::execute_schedule`]). The fold replays the cache and
/// push logic so service times — and therefore batch boundaries — are
/// byte-identical to the simulated run.
pub fn schedule(
    model: &ModelConfig,
    cfg: &ServeConfig,
    latency: &LatencyModel,
) -> (Vec<Request>, Vec<MicroBatch>) {
    let requests = generate(&cfg.workload, model);
    let keys: Vec<Vec<RowKey>> = requests.iter().map(|r| r.row_keys().collect()).collect();
    let mut cache = build_cache(cfg, &keys);
    let push_at_us = cfg.push.map(|p| (p.at_secs * 1e6) as u64);
    let mut push_applied = false;
    let arrivals: Vec<u64> = requests.iter().map(|r| r.arrival_us).collect();
    let (batches, _) = assemble_and_serve(&arrivals, cfg.batching, |len, start| {
        let mut stall_us = 0u64;
        if let (Some(at), Some(push)) = (push_at_us, cfg.push) {
            if !push_applied && arrivals[start] >= at {
                push_applied = true;
                cache = build_cache(cfg, &keys);
                stall_us = push.stall_us;
            }
        }
        let (mut hits, mut misses) = (0u64, 0u64);
        for keys in keys.iter().skip(start).take(len) {
            for &key in keys {
                if cache.lookup(key) {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
        }
        (latency.batch_us(len, hits, misses) + stall_us as f64) as u64
    });
    (requests, batches)
}

/// Runs one serving scenario end to end in virtual time.
pub fn simulate(model: &ModelConfig, cfg: &ServeConfig, latency: &LatencyModel) -> ServeReport {
    let requests = generate(&cfg.workload, model);
    record_arrivals(&requests);

    let keys: Vec<Vec<RowKey>> = requests.iter().map(|r| r.row_keys().collect()).collect();
    let mut cache = build_cache(cfg, &keys);

    let push_at_us = cfg.push.map(|p| (p.at_secs * 1e6) as u64);
    let mut push_applied = false;
    let mut pre_push = CacheCounters::default();

    let arrivals: Vec<u64> = requests.iter().map(|r| r.arrival_us).collect();
    let mut tracer = TraceRecorder::new();
    let mut served_us = ServedTime::default();

    let (batches, completions) = assemble_and_serve(&arrivals, cfg.batching, |len, start| {
        // Model push: the first batch closing past the push instant pays
        // the stall and restarts the cache cold.
        let mut stall_us = 0u64;
        if let (Some(at), Some(push)) = (push_at_us, cfg.push) {
            if !push_applied && arrivals[start] >= at {
                push_applied = true;
                pre_push = CacheCounters::of(&cache);
                cache = build_cache(cfg, &keys);
                stall_us = push.stall_us;
            }
        }
        let (mut hits, mut misses) = (0u64, 0u64);
        for keys in keys.iter().skip(start).take(len) {
            for &key in keys {
                if cache.lookup(key) {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
        }
        let hit_us = latency.hit_us_per_lookup * hits as f64;
        let miss_us = latency.miss_us_per_lookup * misses as f64;
        let dense_us = latency.batch_overhead_us + latency.per_example_us * len as f64;
        served_us.add(&mut tracer, hit_us, miss_us, dense_us, stall_us as f64);
        (latency.batch_us(len, hits, misses) + stall_us as f64) as u64
    });

    build_report(
        cfg,
        &requests,
        &batches,
        &completions,
        &cache,
        pre_push,
        push_applied,
        &served_us,
        tracer,
    )
}

/// Hit/miss/eviction totals frozen at the push instant.
#[derive(Debug, Clone, Copy, Default)]
struct CacheCounters {
    hits: u64,
    misses: u64,
}

impl CacheCounters {
    fn of(cache: &EmbeddingCache) -> Self {
        Self {
            hits: cache.hits(),
            misses: cache.misses(),
        }
    }

    fn hit_rate(self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Served-time accumulators per attribution category (virtual µs).
#[derive(Debug, Default)]
struct ServedTime {
    hit_us: f64,
    miss_us: f64,
    dense_us: f64,
    stall_us: f64,
    spans: usize,
}

/// Cap on per-batch trace spans so huge sweeps stay cheap; totals keep
/// accumulating past the cap.
const MAX_TRACE_SPANS: usize = 512;

impl ServedTime {
    fn add(
        &mut self,
        tracer: &mut TraceRecorder,
        hit_us: f64,
        miss_us: f64,
        dense_us: f64,
        stall_us: f64,
    ) {
        let start = self.total_us();
        if self.spans < MAX_TRACE_SPANS {
            let mut at = start;
            for (category, dur) in [
                (TaskCategory::EmbeddingLookup, hit_us),
                (TaskCategory::PcieTransfer, miss_us),
                (TaskCategory::MlpCompute, dense_us),
                (TaskCategory::Recovery, stall_us),
            ] {
                if dur > 0.0 {
                    tracer.span("serve", category.label(), category, at, dur);
                    at += dur;
                }
            }
            self.spans += 1;
        }
        self.hit_us += hit_us;
        self.miss_us += miss_us;
        self.dense_us += dense_us;
        self.stall_us += stall_us;
    }

    fn total_us(&self) -> f64 {
        self.hit_us + self.miss_us + self.dense_us + self.stall_us
    }
}

fn build_cache(cfg: &ServeConfig, keys: &[Vec<RowKey>]) -> EmbeddingCache {
    match cfg.policy {
        CachePolicy::StaticHot => {
            let flat: Vec<RowKey> = keys.iter().flatten().copied().collect();
            let hot: BTreeSet<RowKey> = optimal_static_set(&flat, cfg.capacity_rows);
            EmbeddingCache::static_hot(&hot)
        }
        policy => EmbeddingCache::new(policy, cfg.capacity_rows),
    }
}

fn record_arrivals(requests: &[Request]) {
    if !recsim_detsan::enabled() {
        return;
    }
    let mut d = StateDigest::new();
    d.write_usize(requests.len());
    for r in requests {
        d.write_u64(r.arrival_us);
        d.write_u64(r.id);
    }
    recsim_detsan::record("serve/arrivals", d.finish());
}

#[allow(clippy::too_many_arguments)]
fn build_report(
    cfg: &ServeConfig,
    requests: &[Request],
    batches: &[MicroBatch],
    completions: &[u64],
    cache: &EmbeddingCache,
    pre_push: CacheCounters,
    push_applied: bool,
    served_us: &ServedTime,
    tracer: TraceRecorder,
) -> ServeReport {
    let n = requests.len();
    let mut latencies_ms: Vec<f64> = requests
        .iter()
        .zip(completions)
        .map(|(r, &c)| (c.saturating_sub(r.arrival_us)) as f64 * 1e-3)
        .collect();

    if recsim_detsan::enabled() {
        let mut d = StateDigest::new();
        d.write_u64(cache.hits());
        d.write_u64(cache.misses());
        d.write_u64(cache.evictions());
        d.write_u64(cache.eviction_digest());
        recsim_detsan::record("serve/cache", d.finish());
        let mut d = StateDigest::new();
        for &l in &latencies_ms {
            d.write_f64(l);
        }
        recsim_detsan::record("serve/latency", d.finish());
    }

    let within_slo = latencies_ms.iter().filter(|&&l| l <= cfg.slo_ms).count();
    latencies_ms.sort_by(f64::total_cmp);
    let q = |p: f64| {
        if latencies_ms.is_empty() {
            0.0
        } else {
            quantile(&latencies_ms, p)
        }
    };

    // Wait time (queueing + batching delay) = latency minus served time;
    // attribute it as host staging next to the served categories.
    let total_latency_us: f64 = latencies_ms.iter().sum::<f64>() * 1e3;
    let wait_us = (total_latency_us - served_us.total_us()).max(0.0);
    let denom = served_us.total_us() + wait_us;
    // The tracer carried per-batch spans (bounded); shares come from the
    // exact accumulators so they cover the whole run.
    let _ = tracer.finish();
    let mut attribution: Vec<(String, f64)> = [
        (TaskCategory::EmbeddingLookup, served_us.hit_us),
        (TaskCategory::PcieTransfer, served_us.miss_us),
        (TaskCategory::MlpCompute, served_us.dense_us),
        (TaskCategory::Recovery, served_us.stall_us),
        (TaskCategory::HostStaging, wait_us),
    ]
    .into_iter()
    .filter(|(_, us)| *us > 0.0)
    .map(|(c, us)| {
        (
            c.label().to_string(),
            if denom > 0.0 { us / denom } else { 0.0 },
        )
    })
    .collect();
    attribution.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

    let push = push_applied.then(|| {
        let push_us = cfg.push.map_or(0, |p| (p.at_secs * 1e6) as u64);
        let split = requests.partition_point(|r| r.arrival_us < push_us);
        let p99_of = |range: std::ops::Range<usize>| {
            let mut v: Vec<f64> = requests[range.clone()]
                .iter()
                .zip(&completions[range])
                .map(|(r, &c)| (c.saturating_sub(r.arrival_us)) as f64 * 1e-3)
                .collect();
            v.sort_by(f64::total_cmp);
            if v.is_empty() {
                0.0
            } else {
                quantile(&v, 0.99)
            }
        };
        let post = CacheCounters {
            hits: cache.hits(),
            misses: cache.misses(),
        };
        PushReport {
            pre_p99_ms: p99_of(0..split),
            post_p99_ms: p99_of(split..n),
            pre_hit_rate: pre_push.hit_rate(),
            post_hit_rate: post.hit_rate(),
            stall_ms: cfg.push.map_or(0.0, |p| p.stall_us as f64 * 1e-3),
        }
    });

    ServeReport {
        requests: n,
        batches: batches.len(),
        mean_batch: if batches.is_empty() {
            0.0
        } else {
            n as f64 / batches.len() as f64
        },
        duration_secs: cfg.workload.duration_secs,
        offered_rps: n as f64 / cfg.workload.duration_secs,
        p50_ms: q(0.50),
        p99_ms: q(0.99),
        p999_ms: q(0.999),
        hit_rate: cache.hit_rate(),
        evictions: cache.evictions(),
        slo_ms: cfg.slo_ms,
        slo_attainment: if n == 0 {
            0.0
        } else {
            within_slo as f64 / n as f64
        },
        goodput_rps: within_slo as f64 / cfg.workload.duration_secs,
        attribution,
        push,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Spike;

    fn model() -> ModelConfig {
        ModelConfig::test_suite(8, 4, 16_384, &[32, 16])
    }

    fn base_config() -> ServeConfig {
        ServeConfig {
            workload: WorkloadConfig::steady(42, 2_000.0, 1.0),
            policy: CachePolicy::Lru,
            capacity_rows: 1_024,
            batching: BatchPolicy::new(16, 2_000),
            slo_ms: 10.0,
            push: None,
        }
    }

    #[test]
    fn simulate_is_deterministic() {
        let m = model();
        let lat = LatencyModel::closed_form(&m);
        let a = simulate(&m, &base_config(), &lat);
        let b = simulate(&m, &base_config(), &lat);
        assert_eq!(a, b);
        assert!(a.requests > 1_500);
        assert!(a.p50_ms <= a.p99_ms && a.p99_ms <= a.p999_ms);
        assert!(a.hit_rate > 0.0 && a.hit_rate < 1.0);
    }

    #[test]
    fn schedule_matches_the_priced_run() {
        // `schedule` must reproduce exactly the batches `simulate` prices —
        // including across a model push, where the cache restart changes
        // service times and therefore batch boundaries.
        let m = model();
        let lat = LatencyModel::closed_form(&m);
        let cfg = ServeConfig {
            push: Some(ModelPush {
                at_secs: 0.5,
                stall_us: 10_000,
            }),
            ..base_config()
        };
        let report = simulate(&m, &cfg, &lat);
        let (requests, batches) = schedule(&m, &cfg, &lat);
        assert_eq!(requests.len(), report.requests);
        assert_eq!(batches.len(), report.batches);
        let covered: usize = batches.iter().map(|b| b.len).sum();
        assert_eq!(covered, requests.len());
    }

    #[test]
    fn attribution_shares_sum_to_one() {
        let m = model();
        let lat = LatencyModel::closed_form(&m);
        let report = simulate(&m, &base_config(), &lat);
        let total: f64 = report.attribution.iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
    }

    #[test]
    fn spike_raises_tail_latency() {
        let m = model();
        let lat = LatencyModel::closed_form(&m);
        let steady = simulate(&m, &base_config(), &lat);
        let mut spiked_cfg = base_config();
        spiked_cfg.workload.spike = Some(Spike {
            start_secs: 0.3,
            duration_secs: 0.4,
            multiplier: 30.0,
        });
        let spiked = simulate(&m, &spiked_cfg, &lat);
        assert!(
            spiked.p99_ms > steady.p99_ms,
            "spiked {} vs steady {}",
            spiked.p99_ms,
            steady.p99_ms
        );
        assert!(spiked.slo_attainment < steady.slo_attainment);
    }

    #[test]
    fn model_push_stalls_and_cools_the_cache() {
        let m = model();
        let lat = LatencyModel::closed_form(&m);
        let mut cfg = base_config();
        cfg.push = Some(ModelPush {
            at_secs: 0.5,
            stall_us: 50_000,
        });
        let report = simulate(&m, &cfg, &lat);
        let push = report.push.expect("push applied");
        assert!(push.post_p99_ms > push.pre_p99_ms);
        assert!(push.stall_ms > 0.0);
        let recovery = report
            .attribution
            .iter()
            .find(|(label, _)| label == TaskCategory::Recovery.label());
        assert!(
            recovery.is_some(),
            "stall attributed: {:?}",
            report.attribution
        );
    }

    #[test]
    fn static_hot_beats_lru_on_stationary_zipf() {
        let m = model();
        let lat = LatencyModel::closed_form(&m);
        let lru = simulate(&m, &base_config(), &lat);
        let mut hot_cfg = base_config();
        hot_cfg.policy = CachePolicy::StaticHot;
        let hot = simulate(&m, &hot_cfg, &lat);
        assert!(
            hot.hit_rate >= lru.hit_rate,
            "static-hot {} vs lru {}",
            hot.hit_rate,
            lru.hit_rate
        );
    }
}
