//! # recsim-serve — the online inference serving tier
//!
//! Trained DLRMs spend most of their life *serving*: answering ranking
//! queries under a tail-latency SLO, not training. This crate models that
//! tier with the same discipline as the rest of the workspace — virtual
//! time only, counter-keyed randomness, byte-identical output at any
//! thread count — and can also *execute* the schedule against a real
//! trained model.
//!
//! The pieces, in pipeline order:
//!
//! * [`workload`] — the open-loop request generator: Poisson/diurnal
//!   arrivals with optional traffic spikes, per-feature Zipf row
//!   popularity (via `recsim-data`), everything a pure function of the
//!   seed.
//! * [`batcher`] — the dynamic micro-batcher: the max-batch / max-delay
//!   policy plus a single-server queueing fold that turns arrivals into
//!   batches and completion times.
//! * [`cache`] — the embedding cache: LRU and perfect-LFU (both stack
//!   algorithms, so hit rate is provably monotone in capacity) plus a
//!   static-hot set; deterministic eviction order with a rolling digest.
//! * [`pricing`] — per-batch latency priced from the `recsim-hw` memory
//!   hierarchy (HBM hit vs host-DDR-plus-PCIe miss), optionally
//!   calibrated against the measured kernel baseline.
//! * [`engine`] — the discrete-event serving loop: p50/p99/p999,
//!   goodput-under-SLO, trace-category attribution, traffic spikes, and
//!   mid-run model pushes.
//! * [`exec`] — the real path: assembles each micro-batch into a
//!   `MiniBatch` and runs the trained model forward under `prof::scope`
//!   instrumentation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod engine;
pub mod exec;
pub mod pricing;
pub mod workload;

pub use batcher::{assemble_and_serve, BatchPolicy, MicroBatch};
pub use cache::{optimal_static_set, row_key, static_hits, CachePolicy, EmbeddingCache, RowKey};
pub use engine::{schedule, simulate, ModelPush, PushReport, ServeConfig, ServeReport};
pub use exec::{execute_schedule, ExecutionSummary};
pub use pricing::LatencyModel;
pub use workload::{generate, ArrivalProcess, Request, Spike, WorkloadConfig};
