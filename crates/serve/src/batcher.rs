//! The dynamic micro-batcher.
//!
//! Inference kernels amortize launch overhead across a batch, but a batch
//! only exists once enough requests arrive — so batching trades queueing
//! delay for throughput. The policy is the classic *max-batch / max-delay*
//! pair: a batch closes as soon as `max_batch` requests are waiting, or
//! when the oldest waiting request has been held `max_delay_us`, whichever
//! comes first. Under a busy server the close time additionally floors at
//! the server-free time, which is what lets batches fill to `max_batch`
//! instantly during overload (adaptive batching).

use serde::{Deserialize, Serialize};

/// The max-batch / max-delay batching policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchPolicy {
    /// Largest batch the kernel accepts.
    pub max_batch: usize,
    /// Longest the oldest request may be held before the batch closes,
    /// virtual microseconds.
    pub max_delay_us: u64,
}

impl BatchPolicy {
    /// A policy.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn new(max_batch: usize, max_delay_us: u64) -> Self {
        assert!(max_batch > 0, "max batch must be positive");
        Self {
            max_batch,
            max_delay_us,
        }
    }
}

/// One closed micro-batch: requests `[start, start + len)` of the arrival
/// -ordered trace, closed (ready for service) at `close_us`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroBatch {
    /// Index of the first request in the batch.
    pub start: usize,
    /// Number of requests in the batch.
    pub len: usize,
    /// Virtual time the batch closed and could start service.
    pub close_us: u64,
}

/// Greedily assembles micro-batches over sorted `arrivals_us`, serving
/// them on a single logical server whose per-batch service time is given
/// by `service_us(batch_size, first_request_index)`. Returns the batches
/// and each request's completion time (same order as `arrivals_us`).
///
/// The loop is a pure fold over the trace — no wall clock, no state
/// outside its locals — so its output is byte-identical on every run.
pub fn assemble_and_serve(
    arrivals_us: &[u64],
    policy: BatchPolicy,
    mut service_us: impl FnMut(usize, usize) -> u64,
) -> (Vec<MicroBatch>, Vec<u64>) {
    let n = arrivals_us.len();
    let mut batches = Vec::new();
    let mut completions = vec![0u64; n];
    let mut server_free = 0u64;
    let mut i = 0usize;
    while i < n {
        // Earliest instant the server could take a batch led by request i.
        let free = server_free.max(arrivals_us[i]);
        // The batch fills when its max_batch-th member arrives...
        let fill = if i + policy.max_batch - 1 < n {
            arrivals_us[i + policy.max_batch - 1]
        } else {
            u64::MAX
        };
        // ...or times out `max_delay_us` after its oldest member arrived.
        let deadline = arrivals_us[i].saturating_add(policy.max_delay_us);
        let close = free.max(fill.min(deadline));
        // Take everything that has arrived by the close, up to max_batch.
        let mut len = 0usize;
        while i + len < n && len < policy.max_batch && arrivals_us[i + len] <= close {
            len += 1;
        }
        debug_assert!(len > 0, "batch must contain its lead request");
        let took = service_us(len, i);
        server_free = close + took;
        for done in completions.iter_mut().skip(i).take(len) {
            *done = server_free;
        }
        batches.push(MicroBatch {
            start: i,
            len,
            close_us: close,
        });
        i += len;
    }
    (batches, completions)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_to_max_batch_when_requests_are_waiting() {
        // Four requests at t=0, max_batch 2: two full batches back to back.
        let arrivals = [0, 0, 0, 0];
        let (batches, completions) =
            assemble_and_serve(&arrivals, BatchPolicy::new(2, 1_000), |b, _| 10 * b as u64);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len, 2);
        assert_eq!(batches[1].len, 2);
        assert_eq!(completions, vec![20, 20, 40, 40]);
    }

    #[test]
    fn closes_on_deadline_when_traffic_is_sparse() {
        // One request, then nothing: the batch closes at arrival + delay.
        let arrivals = [100];
        let (batches, completions) =
            assemble_and_serve(&arrivals, BatchPolicy::new(8, 500), |_, _| 50);
        assert_eq!(batches[0].close_us, 600);
        assert_eq!(completions[0], 650);
    }

    #[test]
    fn close_never_precedes_server_free() {
        // Slow service: second batch must wait for the server, and fills
        // with both remaining requests while waiting.
        let arrivals = [0, 10, 20];
        let (batches, _) = assemble_and_serve(&arrivals, BatchPolicy::new(2, 5), |_, _| 1_000);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[1].len, 2);
        assert!(batches[1].close_us >= 1_000);
    }

    #[test]
    fn unit_batches_serve_fifo() {
        let arrivals = [0, 5, 10];
        let (batches, completions) =
            assemble_and_serve(&arrivals, BatchPolicy::new(1, 0), |b, _| {
                assert_eq!(b, 1);
                7
            });
        assert_eq!(batches.len(), 3);
        assert_eq!(completions, vec![7, 14, 21]);
    }

    #[test]
    fn every_request_lands_in_exactly_one_batch() {
        let arrivals: Vec<u64> = (0..997u64).map(|i| i * 13 % 10_000).collect();
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let (batches, _) = assemble_and_serve(&sorted, BatchPolicy::new(7, 111), |b, _| b as u64);
        let covered: usize = batches.iter().map(|b| b.len).sum();
        assert_eq!(covered, sorted.len());
        for w in batches.windows(2) {
            assert_eq!(w[0].start + w[0].len, w[1].start);
        }
    }
}
