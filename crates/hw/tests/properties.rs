//! Property-based tests for the hardware substrate invariants.

use proptest::prelude::*;
use recsim_hw::device::v100;
use recsim_hw::units::{Bandwidth, Bytes, Duration, Flops};
use recsim_hw::{AccessPattern, Link, Memory, Platform, Work};

proptest! {
    #[test]
    fn bytes_add_is_commutative(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40) {
        prop_assert_eq!(Bytes::new(a) + Bytes::new(b), Bytes::new(b) + Bytes::new(a));
    }

    #[test]
    fn transfer_time_scales_linearly(
        gb in 1.0f64..1000.0,
        bytes in 1u64..1u64 << 32,
    ) {
        let bw = Bandwidth::from_gb_per_s(gb);
        let t1 = bw.transfer_time(Bytes::new(bytes));
        let t2 = bw.transfer_time(Bytes::new(bytes * 2));
        prop_assert!((t2.as_secs() - 2.0 * t1.as_secs()).abs() < 1e-9 * t1.as_secs().max(1.0));
    }

    #[test]
    fn random_access_never_faster(
        cap_gib in 1u64..64,
        gbps in 1.0f64..2000.0,
        eff in 0.01f64..1.0,
        amount in 1u64..1u64 << 30,
    ) {
        let m = Memory::new(Bytes::from_gib(cap_gib), Bandwidth::from_gb_per_s(gbps), eff);
        let seq = m.access_time(Bytes::new(amount), AccessPattern::Sequential);
        let rnd = m.access_time(Bytes::new(amount), AccessPattern::Random);
        prop_assert!(rnd.as_secs() >= seq.as_secs() - 1e-15);
    }

    #[test]
    fn work_time_monotone_in_flops(
        f1 in 0u64..1u64 << 36,
        extra in 0u64..1u64 << 36,
        bytes in 0u64..1u64 << 28,
    ) {
        let gpu = v100(Bytes::from_gib(32));
        let a = Work::compute(Flops::new(f1), Bytes::new(bytes), 1);
        let b = Work::compute(Flops::new(f1 + extra), Bytes::new(bytes), 1);
        prop_assert!(b.time_on(&gpu).as_secs() >= a.time_on(&gpu).as_secs() - 1e-15);
    }

    #[test]
    fn merged_work_takes_at_least_max_part(
        fa in 0u64..1u64 << 32, ba in 0u64..1u64 << 26,
        fb in 0u64..1u64 << 32, bb in 0u64..1u64 << 26,
    ) {
        let gpu = v100(Bytes::from_gib(32));
        let a = Work::compute(Flops::new(fa), Bytes::new(ba), 1);
        let b = Work::gather(Bytes::new(bb), 1).merge(&Work::compute(Flops::new(fb), Bytes::ZERO, 0));
        let merged = a.merge(&b);
        let t = merged.time_on(&gpu).as_secs();
        prop_assert!(t >= a.time_on(&gpu).as_secs() - gpu.kernel_overhead().as_secs() - 1e-15);
        prop_assert!(t >= b.time_on(&gpu).as_secs() - gpu.kernel_overhead().as_secs() - 1e-15);
    }

    #[test]
    fn link_transfer_time_monotone_in_payload(
        small in 1u64..1u64 << 30,
        extra in 0u64..1u64 << 30,
        msgs in 1u64..100,
    ) {
        let link = Link::ethernet_100g();
        let a = link.transfer_time(Bytes::new(small), msgs);
        let b = link.transfer_time(Bytes::new(small + extra), msgs);
        prop_assert!(b.as_secs() >= a.as_secs() - 1e-15);
    }

    #[test]
    fn power_draw_within_envelope(u in -2.0f64..3.0) {
        let p = Platform::big_basin(Bytes::from_gib(16));
        let draw = p.power().draw(u).as_watts();
        prop_assert!(draw >= 0.0);
        prop_assert!(draw <= p.power().envelope().as_watts() + 1e-9);
    }

    #[test]
    fn duration_saturating_sub_never_negative(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let d = Duration::from_secs(a).saturating_sub(Duration::from_secs(b));
        prop_assert!(d.as_secs() >= 0.0);
    }
}
