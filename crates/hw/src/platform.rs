//! Whole-machine platform models and the Table I presets.

use crate::device::{self, ComputeDevice};
use crate::link::Link;
use crate::power::PowerModel;
use crate::scm::ScmDevice;
use crate::units::Bytes;
use recsim_verify::{Code, Diagnostic, Validate};
use serde::{Deserialize, Serialize};

/// Which of the paper's platforms (or a custom one) a [`Platform`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// Dual-socket CPU trainer/parameter server (Table I column 1).
    DualSocketCpu,
    /// Big Basin: 8×V100 with NVLink hybrid cube mesh (Table I column 2).
    BigBasin,
    /// Prototype Zion: 8 sockets, ~2 TB, 8×V100 *without* direct GPU-GPU
    /// interconnect (Table I column 3 and Section VI.B).
    ZionPrototype,
    /// A user-assembled machine.
    Custom,
}

/// A training server: host CPU complex, accelerators and interconnects.
///
/// # Example
///
/// ```
/// use recsim_hw::{Platform, units::Bytes};
///
/// let p = Platform::big_basin(Bytes::from_gib(16));
/// assert_eq!(p.total_gpu_memory(), Bytes::from_gib(128));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    kind: PlatformKind,
    name: String,
    host: ComputeDevice,
    gpus: Vec<ComputeDevice>,
    gpu_interconnect: Option<Link>,
    host_gpu_link: Option<Link>,
    network: Link,
    power: PowerModel,
    /// Optional storage-class-memory / NVMe tier below host DDR. None on
    /// every Table I preset; attached via [`Platform::with_scm`] for the
    /// per-row sharding hierarchy. `serde(default)` keeps configs written
    /// before this tier existed loadable.
    #[serde(default)]
    scm: Option<ScmDevice>,
}

impl Platform {
    /// Assembles a custom platform.
    ///
    /// # Panics
    ///
    /// Panics if GPUs are present without a host↔GPU link.
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: impl Into<String>,
        host: ComputeDevice,
        gpus: Vec<ComputeDevice>,
        gpu_interconnect: Option<Link>,
        host_gpu_link: Option<Link>,
        network: Link,
        power: PowerModel,
    ) -> Self {
        assert!(
            gpus.is_empty() || host_gpu_link.is_some(),
            "platforms with GPUs need a host-GPU link"
        );
        Self {
            kind: PlatformKind::Custom,
            name: name.into(),
            host,
            gpus,
            gpu_interconnect,
            host_gpu_link,
            network,
            power,
            scm: None,
        }
    }

    /// The dual-socket CPU server of Table I: 2 Skylake sockets, 256 GB,
    /// 25 Gbps Ethernet, no accelerators.
    pub fn dual_socket_cpu() -> Self {
        Self {
            kind: PlatformKind::DualSocketCpu,
            name: "dual-socket CPU".into(),
            host: device::skylake_dual_socket(),
            gpus: Vec::new(),
            gpu_interconnect: None,
            host_gpu_link: None,
            network: Link::ethernet_25g(),
            power: PowerModel::cpu_server(),
            scm: None,
        }
    }

    /// Big Basin (Table I): 8×V100 (16 or 32 GiB each) on an NVLink hybrid
    /// cube mesh, dual-socket host with 256 GB, 100 Gbps Ethernet.
    pub fn big_basin(gpu_memory: Bytes) -> Self {
        Self {
            kind: PlatformKind::BigBasin,
            name: "Big Basin".into(),
            host: device::skylake_dual_socket(),
            gpus: vec![device::v100(gpu_memory); 8],
            gpu_interconnect: Some(Link::nvlink_hybrid_cube_mesh()),
            host_gpu_link: Some(Link::pcie3_x16()),
            network: Link::ethernet_100g(),
            power: PowerModel::big_basin(),
            scm: None,
        }
    }

    /// DGX-A100: the generation after Big Basin (8×A100-40GB on NVSwitch,
    /// dual 64-core hosts with 1 TB DDR4, 200 GbE). The paper's related
    /// work cites HugeCTR's MLPerf-DLRM results on this machine.
    pub fn dgx_a100() -> Self {
        let host = ComputeDevice::new(
            device::DeviceKind::Cpu,
            crate::units::FlopRate::from_tflops(5.0),
            0.30,
            crate::memory::Memory::new(
                Bytes::from_tib(1),
                crate::units::Bandwidth::from_gb_per_s(380.0),
                0.25,
            ),
            crate::units::Duration::from_micros(1.0),
        );
        Self {
            kind: PlatformKind::Custom,
            name: "DGX-A100".into(),
            host,
            gpus: vec![device::a100(); 8],
            gpu_interconnect: Some(Link::nvlink3_nvswitch()),
            host_gpu_link: Some(Link::pcie4_x16()),
            network: Link::ethernet_200g(),
            power: PowerModel::new(crate::units::Power::from_watts(6500.0), 0.30),
            scm: None,
        }
    }

    /// Prototype Zion (Table I + Section VI.B): 8 CPU sockets with ~2 TB /
    /// ~1 TB/s system memory, 8×V100-32GB, 4×100 Gbps InfiniBand — and *no
    /// direct GPU-GPU interconnect*: "there was no GPU-GPU direct
    /// communication in our prototype Zion server, hence all communication
    /// across GPUs went through CPUs".
    pub fn zion_prototype() -> Self {
        Self {
            kind: PlatformKind::ZionPrototype,
            name: "Zion (prototype)".into(),
            host: device::zion_cpu_complex(),
            gpus: vec![device::v100(Bytes::from_gib(32)); 8],
            gpu_interconnect: None,
            host_gpu_link: Some(Link::pcie3_x16()),
            network: Link::infiniband_4x100g(),
            power: PowerModel::zion(),
            scm: None,
        }
    }

    /// Which preset (or custom) this platform is.
    pub fn kind(&self) -> PlatformKind {
        self.kind
    }

    /// Human-readable platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The host CPU complex (with the system memory attached).
    pub fn host(&self) -> &ComputeDevice {
        &self.host
    }

    /// The accelerators, if any.
    pub fn gpus(&self) -> &[ComputeDevice] {
        &self.gpus
    }

    /// Whether the platform has accelerators.
    pub fn has_gpus(&self) -> bool {
        !self.gpus.is_empty()
    }

    /// Direct GPU↔GPU interconnect, when present (NVLink on Big Basin;
    /// absent on prototype Zion, where GPU traffic is relayed by the host).
    pub fn gpu_interconnect(&self) -> Option<&Link> {
        self.gpu_interconnect.as_ref()
    }

    /// The host↔GPU link (PCIe), when GPUs are present.
    pub fn host_gpu_link(&self) -> Option<&Link> {
        self.host_gpu_link.as_ref()
    }

    /// The external network interface.
    pub fn network(&self) -> &Link {
        &self.network
    }

    /// The platform power model.
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// The storage-class-memory / NVMe tier, when one is attached.
    pub fn scm(&self) -> Option<&ScmDevice> {
        self.scm.as_ref()
    }

    /// Returns a copy with an SCM/NVMe tier attached below host DDR —
    /// the MTrainS-style heterogeneous hierarchy the per-row sharder
    /// spills cold embedding rows into.
    pub fn with_scm(&self, scm: ScmDevice) -> Platform {
        Platform {
            scm: Some(scm),
            ..self.clone()
        }
    }

    /// Aggregate accelerator memory capacity (Big Basin with 16 GiB SKUs:
    /// 128 GiB; with 32 GiB SKUs: 256 GiB).
    pub fn total_gpu_memory(&self) -> Bytes {
        self.gpus.iter().map(|g| g.memory().capacity()).sum()
    }

    /// Aggregate sustained FP32 throughput of all accelerators in TFLOP/s.
    pub fn total_gpu_tflops(&self) -> f64 {
        self.gpus
            .iter()
            .map(|g| g.sustained_flop_rate().as_tflops())
            .sum()
    }

    /// Returns a copy with the GPU interconnect removed — used to model
    /// prototype-Zion-style relayed communication on otherwise identical
    /// hardware.
    pub fn without_gpu_interconnect(&self) -> Platform {
        Platform {
            gpu_interconnect: None,
            ..self.clone()
        }
    }

    /// Returns a copy with every memory's random-access penalty removed
    /// (`ablation_random_access`).
    pub fn without_random_access_penalty(&self) -> Platform {
        Platform {
            host: self
                .host
                .with_memory(self.host.memory().without_random_penalty()),
            gpus: self
                .gpus
                .iter()
                .map(|g| g.with_memory(g.memory().without_random_penalty()))
                .collect(),
            ..self.clone()
        }
    }

    /// Returns a copy with GPU `index` derated to `factor` of its compute
    /// rate — a straggler, the "hardware level variability" the paper's
    /// Figure 5 discussion points at. Data-parallel training runs at the
    /// pace of the slowest worker.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `factor` is outside `(0, 1]`.
    pub fn with_straggler_gpu(&self, index: usize, factor: f64) -> Platform {
        assert!(index < self.gpus.len(), "GPU index out of range");
        assert!(
            factor > 0.0 && factor <= 1.0,
            "derate factor must be in (0, 1]"
        );
        let mut gpus = self.gpus.clone();
        let g = gpus[index];
        gpus[index] = ComputeDevice::new(
            g.kind(),
            g.peak_flop_rate().derated(factor),
            g.gemm_efficiency(),
            *g.memory(),
            g.kernel_overhead(),
        );
        Platform {
            gpus,
            ..self.clone()
        }
    }

    /// Returns a copy with only the first `count` GPUs — the surviving
    /// machine after `count`-GPU elastic shrink-and-rebalance. Everything
    /// else (host, links, network, power envelope) is unchanged: a failed
    /// accelerator does not shrink the chassis.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds the GPU count.
    pub fn with_gpu_count(&self, count: usize) -> Platform {
        assert!(count >= 1, "a shrunk platform keeps at least one GPU");
        assert!(count <= self.gpus.len(), "cannot grow the GPU count");
        Platform {
            gpus: self.gpus[..count].to_vec(),
            ..self.clone()
        }
    }

    /// Sustained bandwidth available for streaming checkpoint state off (or
    /// back onto) the machine: GPU state drains over the per-GPU host links
    /// in parallel and leaves through the NIC, so the slower aggregate
    /// bounds the stream. CPU-only platforms are bound by the NIC alone.
    pub fn checkpoint_bandwidth(&self) -> crate::units::Bandwidth {
        let nic = self.network.effective_bandwidth();
        match self.host_gpu_link {
            Some(link) if self.has_gpus() => {
                let drain = link.effective_bandwidth().as_gb_per_s() * self.gpus.len() as f64;
                if drain < nic.as_gb_per_s() {
                    crate::units::Bandwidth::from_gb_per_s(drain)
                } else {
                    nic
                }
            }
            _ => nic,
        }
    }

    /// Time to write (or restore) `state` bytes of checkpoint at
    /// [`Platform::checkpoint_bandwidth`] — the IO cost model behind the
    /// optimal-checkpoint-interval curve.
    pub fn checkpoint_transfer_time(&self, state: Bytes) -> crate::units::Duration {
        self.checkpoint_bandwidth().transfer_time(state)
    }

    /// Returns a copy with zero kernel-launch overhead on every device
    /// (`ablation_launch_overhead`).
    pub fn without_kernel_overhead(&self) -> Platform {
        Platform {
            host: self.host.without_kernel_overhead(),
            gpus: self
                .gpus
                .iter()
                .map(ComputeDevice::without_kernel_overhead)
                .collect(),
            ..self.clone()
        }
    }
}

/// RV020: structural invariants of a platform. Constructors uphold these by
/// construction, but `Platform` is `Deserialize`, so arbitrary instances can
/// arrive from config files — the simulators run this before using one.
impl Validate for Platform {
    fn validate(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let at = |part: &str| format!("Platform({}).{part}", self.name);
        if self.name.trim().is_empty() {
            diags.push(Diagnostic::warning(
                Code::InvalidPlatform,
                "Platform.name",
                "platform has an empty name",
            ));
        }
        if self.has_gpus() && self.host_gpu_link.is_none() {
            diags.push(Diagnostic::error(
                Code::InvalidPlatform,
                at("host_gpu_link"),
                format!(
                    "{} GPU(s) but no host-GPU link to reach them",
                    self.gpus.len()
                ),
            ));
        }
        if !self.has_gpus() && self.gpu_interconnect.is_some() {
            diags.push(Diagnostic::warning(
                Code::InvalidPlatform,
                at("gpu_interconnect"),
                "GPU interconnect present on a platform without GPUs",
            ));
        }
        validate_device(&mut diags, &at("host"), &self.host);
        for (i, gpu) in self.gpus.iter().enumerate() {
            validate_device(&mut diags, &at(&format!("gpus[{i}]")), gpu);
        }
        for (part, link) in [
            ("gpu_interconnect", self.gpu_interconnect.as_ref()),
            ("host_gpu_link", self.host_gpu_link.as_ref()),
            ("network", Some(&self.network)),
        ] {
            if let Some(link) = link {
                validate_link(&mut diags, &at(part), link);
            }
        }
        if let Some(scm) = &self.scm {
            // `ScmDevice::new` upholds these, but Deserialize bypasses it.
            if scm.capacity().as_u64() == 0 {
                diags.push(Diagnostic::error(
                    Code::InvalidPlatform,
                    at("scm"),
                    "SCM capacity must be positive",
                ));
            }
            if scm.sustained_bandwidth().as_gb_per_s() <= 0.0 {
                diags.push(Diagnostic::error(
                    Code::InvalidPlatform,
                    at("scm"),
                    "SCM sustained bandwidth must be positive",
                ));
            }
            if scm.read_latency().as_secs() < 0.0 {
                diags.push(Diagnostic::error(
                    Code::InvalidPlatform,
                    at("scm"),
                    "SCM read latency must be non-negative",
                ));
            }
        }
        if self.power.envelope().as_watts() <= 0.0 {
            diags.push(Diagnostic::error(
                Code::InvalidPlatform,
                at("power"),
                "power envelope must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&self.power.idle_fraction()) {
            diags.push(Diagnostic::error(
                Code::InvalidPlatform,
                at("power"),
                format!(
                    "idle fraction {} outside [0, 1]",
                    self.power.idle_fraction()
                ),
            ));
        }
        diags
    }
}

fn validate_device(diags: &mut Vec<Diagnostic>, at: &str, dev: &ComputeDevice) {
    if dev.sustained_flop_rate().as_tflops() <= 0.0 {
        diags.push(Diagnostic::error(
            Code::InvalidPlatform,
            at.to_string(),
            "device has no sustained compute throughput",
        ));
    }
    if dev.memory().capacity().as_f64() <= 0.0 {
        diags.push(Diagnostic::error(
            Code::InvalidPlatform,
            at.to_string(),
            "device memory capacity must be positive",
        ));
    }
    if dev.memory().stream_bandwidth().as_gb_per_s() <= 0.0 {
        diags.push(Diagnostic::error(
            Code::InvalidPlatform,
            at.to_string(),
            "device memory bandwidth must be positive",
        ));
    }
    let rae = dev.memory().random_access_efficiency();
    if !(rae > 0.0 && rae <= 1.0) {
        diags.push(Diagnostic::error(
            Code::InvalidPlatform,
            at.to_string(),
            format!("random-access efficiency {rae} outside (0, 1]"),
        ));
    }
}

fn validate_link(diags: &mut Vec<Diagnostic>, at: &str, link: &Link) {
    if link.bandwidth().as_gb_per_s() <= 0.0 || link.effective_bandwidth().as_gb_per_s() <= 0.0 {
        diags.push(Diagnostic::error(
            Code::InvalidPlatform,
            at.to_string(),
            "link bandwidth (raw and effective) must be positive",
        ));
    }
    if link.latency().as_secs() < 0.0 {
        diags.push(Diagnostic::error(
            Code::InvalidPlatform,
            at.to_string(),
            "link latency must be non-negative",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_cleanly() {
        for p in [
            Platform::dual_socket_cpu(),
            Platform::big_basin(Bytes::from_gib(16)),
            Platform::big_basin(Bytes::from_gib(32)),
            Platform::zion_prototype(),
            Platform::dgx_a100(),
        ] {
            assert!(p.check().is_ok(), "{} should validate", p.name());
        }
    }

    #[test]
    fn deserialized_gpu_platform_without_pcie_is_rv020() {
        // Simulate what `custom()` forbids but Deserialize permits.
        let mut broken = Platform::big_basin(Bytes::from_gib(16));
        broken.host_gpu_link = None;
        let err = broken.check().expect_err("GPUs without a host link");
        assert!(err.has_code(Code::InvalidPlatform));
        assert!(err.to_string().contains("host-GPU link"));
    }

    #[test]
    fn table_one_shapes() {
        let cpu = Platform::dual_socket_cpu();
        assert!(!cpu.has_gpus());
        assert_eq!(cpu.host().memory().capacity(), Bytes::from_gib(256));

        let bb16 = Platform::big_basin(Bytes::from_gib(16));
        assert_eq!(bb16.gpus().len(), 8);
        assert_eq!(bb16.total_gpu_memory(), Bytes::from_gib(128));
        let bb32 = Platform::big_basin(Bytes::from_gib(32));
        assert_eq!(bb32.total_gpu_memory(), Bytes::from_gib(256));

        let zion = Platform::zion_prototype();
        assert_eq!(zion.gpus().len(), 8);
        assert_eq!(zion.host().memory().capacity(), Bytes::from_tib(2));
        assert!(zion.gpu_interconnect().is_none());
        assert!(bb16.gpu_interconnect().is_some());
    }

    #[test]
    fn zion_memory_bandwidth_dwarfs_big_basin_host() {
        let bb = Platform::big_basin(Bytes::from_gib(32));
        let zion = Platform::zion_prototype();
        let ratio = zion.host().memory().stream_bandwidth().as_gb_per_s()
            / bb.host().memory().stream_bandwidth().as_gb_per_s();
        assert!(ratio > 7.0, "Zion claims ~1 TB/s vs ~128 GB/s, got {ratio}");
    }

    #[test]
    fn power_ordering() {
        let cpu = Platform::dual_socket_cpu().power().envelope().as_watts();
        let bb = Platform::big_basin(Bytes::from_gib(16))
            .power()
            .envelope()
            .as_watts();
        let zion = Platform::zion_prototype().power().envelope().as_watts();
        assert!(cpu < bb && bb < zion);
    }

    #[test]
    fn ablations_preserve_identity_elsewhere() {
        let bb = Platform::big_basin(Bytes::from_gib(32));
        let no_nv = bb.without_gpu_interconnect();
        assert!(no_nv.gpu_interconnect().is_none());
        assert_eq!(no_nv.gpus().len(), 8);
        let no_pen = bb.without_random_access_penalty();
        assert_eq!(no_pen.gpus()[0].memory().random_access_efficiency(), 1.0);
        let no_oh = bb.without_kernel_overhead();
        assert_eq!(no_oh.gpus()[0].kernel_overhead().as_secs(), 0.0);
    }

    #[test]
    fn dgx_a100_is_a_generation_ahead_of_big_basin() {
        let bb = Platform::big_basin(Bytes::from_gib(32));
        let dgx = Platform::dgx_a100();
        assert!(dgx.total_gpu_tflops() > bb.total_gpu_tflops());
        assert!(
            dgx.gpus()[0].memory().stream_bandwidth().as_gb_per_s()
                > bb.gpus()[0].memory().stream_bandwidth().as_gb_per_s() * 1.5
        );
        assert!(dgx.gpu_interconnect().is_some());
        assert_eq!(dgx.total_gpu_memory(), Bytes::from_gib(320));
    }

    #[test]
    fn straggler_gpu_is_slower() {
        let bb = Platform::big_basin(Bytes::from_gib(32));
        let s = bb.with_straggler_gpu(3, 0.5);
        assert!(
            s.gpus()[3].sustained_flop_rate().as_tflops()
                < bb.gpus()[3].sustained_flop_rate().as_tflops() * 0.6
        );
        assert_eq!(
            s.gpus()[0].sustained_flop_rate().as_tflops(),
            bb.gpus()[0].sustained_flop_rate().as_tflops()
        );
    }

    #[test]
    fn shrunk_platform_keeps_chassis_but_loses_gpus() {
        let bb = Platform::big_basin(Bytes::from_gib(32));
        let survived = bb.with_gpu_count(5);
        assert_eq!(survived.gpus().len(), 5);
        assert_eq!(survived.name(), bb.name());
        assert_eq!(
            survived.host().memory().capacity(),
            bb.host().memory().capacity()
        );
        assert!(survived.check().is_ok());
        assert_eq!(bb.with_gpu_count(8).gpus().len(), 8);
    }

    #[test]
    #[should_panic(expected = "cannot grow")]
    fn shrunk_platform_cannot_grow() {
        Platform::big_basin(Bytes::from_gib(16)).with_gpu_count(9);
    }

    #[test]
    fn checkpoint_bandwidth_is_the_tighter_of_drain_and_nic() {
        // Big Basin: 8 PCIe3 lanes drain far faster than one 100G NIC, so
        // the NIC bounds the checkpoint stream.
        let bb = Platform::big_basin(Bytes::from_gib(16));
        let nic = bb.network().effective_bandwidth();
        assert_eq!(bb.checkpoint_bandwidth(), nic);
        // CPU-only: NIC is the only path off the box.
        let cpu = Platform::dual_socket_cpu();
        assert_eq!(
            cpu.checkpoint_bandwidth(),
            cpu.network().effective_bandwidth()
        );
        // Transfer time scales linearly with state size.
        let t1 = bb.checkpoint_transfer_time(Bytes::from_gib(1));
        let t4 = bb.checkpoint_transfer_time(Bytes::from_gib(4));
        assert!((t4.as_secs() / t1.as_secs() - 4.0).abs() < 1e-9);
        assert!(t1.as_secs() > 0.0);
    }

    #[test]
    fn scm_tier_attaches_and_validates() {
        let bb = Platform::big_basin(Bytes::from_gib(32));
        assert!(bb.scm().is_none(), "Table I presets carry no SCM tier");
        let with = bb.with_scm(ScmDevice::optane_pmem());
        assert_eq!(
            with.scm().unwrap().capacity(),
            Bytes::from_gib(1536),
            "attached tier is readable back"
        );
        assert_eq!(with.gpus().len(), 8, "everything else is unchanged");
        assert!(with.check().is_ok());
    }

    #[test]
    #[should_panic(expected = "host-GPU link")]
    fn custom_platform_validates_links() {
        Platform::custom(
            "broken",
            device::skylake_dual_socket(),
            vec![device::v100(Bytes::from_gib(16))],
            None,
            None,
            Link::ethernet_25g(),
            PowerModel::cpu_server(),
        );
    }
}
