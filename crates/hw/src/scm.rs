//! Storage-class memory / NVMe tier below host DDR (MTrainS-style).
//!
//! MTrainS (PAPERS.md) shows DLRM embedding tables can spill their cold
//! tail onto byte-addressable storage-class memory (Optane PMem) or NVMe
//! flash: huge capacity at a latency/bandwidth cost that only the rarely
//! touched rows can absorb. This module models such a device with the
//! three numbers that matter for per-row sharding: capacity, per-access
//! random-read latency, and sustained read bandwidth.

use crate::units::{Bandwidth, Bytes, Duration};
use serde::{Deserialize, Serialize};

/// A storage-class-memory or NVMe device: the cold tier of the embedding
/// memory hierarchy.
///
/// # Example
///
/// ```
/// use recsim_hw::scm::ScmDevice;
///
/// let pmem = ScmDevice::optane_pmem();
/// let flash = ScmDevice::nvme_flash();
/// // Flash trades two decimal orders of latency for capacity.
/// assert!(flash.capacity() > pmem.capacity());
/// assert!(flash.read_latency().as_secs() > pmem.read_latency().as_secs() * 50.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScmDevice {
    capacity: Bytes,
    read_latency: Duration,
    sustained_bandwidth: Bandwidth,
}

impl ScmDevice {
    /// Builds a device from its three characteristic numbers.
    ///
    /// # Panics
    ///
    /// Panics if capacity is zero or latency is negative (bandwidth
    /// positivity is enforced by [`Bandwidth`] itself).
    pub fn new(capacity: Bytes, read_latency: Duration, sustained_bandwidth: Bandwidth) -> Self {
        assert!(capacity.as_u64() > 0, "SCM capacity must be positive");
        assert!(
            read_latency.as_secs() >= 0.0,
            "SCM read latency must be non-negative"
        );
        Self {
            capacity,
            read_latency,
            sustained_bandwidth,
        }
    }

    /// Byte-addressable Optane-class persistent memory: ~1.5 TiB per
    /// socket pair, ~300 ns loaded read latency, ~30 GB/s sustained
    /// aggregate read bandwidth (MTrainS Table 1 ballpark).
    pub fn optane_pmem() -> Self {
        Self::new(
            Bytes::from_gib(1536),
            Duration::from_secs(300e-9),
            Bandwidth::from_gb_per_s(30.0),
        )
    }

    /// Datacenter NVMe flash: ~4 TiB, ~80 µs random-read latency, ~6 GB/s
    /// sustained sequential reads.
    pub fn nvme_flash() -> Self {
        Self::new(
            Bytes::from_gib(4096),
            Duration::from_micros(80.0),
            Bandwidth::from_gb_per_s(6.0),
        )
    }

    /// Usable capacity.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Per-access random-read latency.
    pub fn read_latency(&self) -> Duration {
        self.read_latency
    }

    /// Sustained (sequential) read bandwidth.
    pub fn sustained_bandwidth(&self) -> Bandwidth {
        self.sustained_bandwidth
    }

    /// Returns a copy with a different capacity — used by the tier-capacity
    /// sweeps, which scale the cold tier while keeping its speed.
    pub fn with_capacity(&self, capacity: Bytes) -> Self {
        Self::new(capacity, self.read_latency, self.sustained_bandwidth)
    }

    /// Time to serve `accesses` independent random reads totalling `bytes`:
    /// each access pays the device latency, and the payload streams at the
    /// sustained bandwidth. This is the MTrainS access model — latency
    /// dominates for small rows on flash, bandwidth for wide rows on PMem.
    pub fn random_read_time(&self, bytes: Bytes, accesses: u64) -> Duration {
        let latency = self.read_latency.as_secs() * accesses as f64;
        let stream = self.sustained_bandwidth.transfer_time(bytes).as_secs();
        Duration::from_secs(latency + stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_shapes() {
        let pmem = ScmDevice::optane_pmem();
        assert_eq!(pmem.capacity(), Bytes::from_gib(1536));
        assert!(pmem.read_latency().as_secs() < 1e-6, "PMem is sub-µs");
        let flash = ScmDevice::nvme_flash();
        assert!(flash.read_latency().as_secs() > 1e-5, "flash is tens of µs");
        assert!(
            pmem.sustained_bandwidth().as_gb_per_s() > flash.sustained_bandwidth().as_gb_per_s()
        );
    }

    #[test]
    fn random_read_time_decomposes_into_latency_and_stream() {
        let dev = ScmDevice::new(
            Bytes::from_gib(1),
            Duration::from_micros(10.0),
            Bandwidth::from_gb_per_s(1.0),
        );
        // 1000 accesses × 10 µs = 10 ms latency; 1 MB at 1 GB/s = 1 ms.
        let t = dev.random_read_time(Bytes::new(1_000_000), 1000);
        assert!((t.as_secs() - 0.011).abs() < 1e-9, "got {}", t.as_secs());
        // Zero accesses, zero bytes: free.
        assert_eq!(dev.random_read_time(Bytes::new(0), 0).as_secs(), 0.0);
    }

    #[test]
    fn with_capacity_keeps_speed() {
        let pmem = ScmDevice::optane_pmem();
        let small = pmem.with_capacity(Bytes::from_gib(64));
        assert_eq!(small.capacity(), Bytes::from_gib(64));
        assert_eq!(small.read_latency(), pmem.read_latency());
        assert_eq!(small.sustained_bandwidth(), pmem.sustained_bandwidth());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        ScmDevice::new(
            Bytes::new(0),
            Duration::from_micros(1.0),
            Bandwidth::from_gb_per_s(1.0),
        );
    }
}
