//! Compute devices: CPUs and GPUs as roofline engines.

use crate::memory::Memory;
use crate::units::{Bytes, Duration, FlopRate};
use serde::{Deserialize, Serialize};

/// The broad class of a compute device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A general-purpose CPU complex (one or more sockets).
    Cpu,
    /// A discrete accelerator with its own high-bandwidth memory.
    Gpu,
}

/// A compute device: peak throughput, attached memory and fixed per-kernel
/// overhead.
///
/// `kernel_overhead` models the CUDA-API / kernel-launch cost the paper
/// highlights when explaining why GPUs need large batches ("large batch size
/// reduces the overhead from CUDA API calls such as kernel launches"). For
/// CPUs it models per-operator framework dispatch, which is much smaller.
///
/// # Example
///
/// ```
/// use recsim_hw::device::{v100, skylake_dual_socket};
/// use recsim_hw::units::Bytes;
///
/// let gpu = v100(Bytes::from_gib(32));
/// let cpu = skylake_dual_socket();
/// assert!(gpu.peak_flop_rate().as_tflops() > cpu.peak_flop_rate().as_tflops());
/// assert!(gpu.kernel_overhead().as_micros() > cpu.kernel_overhead().as_micros());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeDevice {
    kind: DeviceKind,
    peak_flop_rate: FlopRate,
    /// Fraction of peak FLOP/s sustained on well-blocked GEMMs.
    gemm_efficiency: f64,
    memory: Memory,
    kernel_overhead: Duration,
}

impl ComputeDevice {
    /// Creates a device.
    ///
    /// # Panics
    ///
    /// Panics if `gemm_efficiency` is outside `(0, 1]`.
    pub fn new(
        kind: DeviceKind,
        peak_flop_rate: FlopRate,
        gemm_efficiency: f64,
        memory: Memory,
        kernel_overhead: Duration,
    ) -> Self {
        assert!(
            gemm_efficiency > 0.0 && gemm_efficiency <= 1.0,
            "gemm efficiency must be in (0, 1]"
        );
        Self {
            kind,
            peak_flop_rate,
            gemm_efficiency,
            memory,
            kernel_overhead,
        }
    }

    /// Device class.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Nominal peak FLOP/s (marketing number).
    pub fn peak_flop_rate(&self) -> FlopRate {
        self.peak_flop_rate
    }

    /// FLOP/s sustained on dense GEMM-shaped work.
    pub fn sustained_flop_rate(&self) -> FlopRate {
        self.peak_flop_rate.derated(self.gemm_efficiency)
    }

    /// The fraction of peak sustained on GEMMs.
    pub fn gemm_efficiency(&self) -> f64 {
        self.gemm_efficiency
    }

    /// The memory directly attached to this device.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Fixed cost per launched kernel / dispatched operator.
    pub fn kernel_overhead(&self) -> Duration {
        self.kernel_overhead
    }

    /// Returns a copy with different attached memory (e.g. 16 GB vs 32 GB
    /// V100 variants).
    pub fn with_memory(&self, memory: Memory) -> ComputeDevice {
        ComputeDevice { memory, ..*self }
    }

    /// Returns a copy with zero kernel overhead — the
    /// `ablation_launch_overhead` configuration.
    pub fn without_kernel_overhead(&self) -> ComputeDevice {
        ComputeDevice {
            kernel_overhead: Duration::ZERO,
            ..*self
        }
    }
}

/// Preset: NVIDIA Tesla V100 (15.7 TFLOP/s FP32, HBM2 at 900 GB/s).
///
/// `capacity` selects the 16 GiB or 32 GiB SKU; both shipped in Big Basin
/// (paper Table I).
pub fn v100(capacity: Bytes) -> ComputeDevice {
    ComputeDevice::new(
        DeviceKind::Gpu,
        FlopRate::from_tflops(15.7),
        // Production FP32 GEMMs on V100 sustain roughly half of peak for the
        // modest MLP shapes in recommendation models.
        0.55,
        crate::memory::hbm2_v100(capacity),
        // ~8 us per kernel launch + framework op dispatch.
        Duration::from_micros(8.0),
    )
}

/// Preset: NVIDIA A100-40GB (19.5 TFLOP/s FP32, HBM2e at 1555 GB/s) — the
/// generation after the paper's V100s, included because its related work
/// discusses DLRM results on DGX-A100 systems.
pub fn a100() -> ComputeDevice {
    ComputeDevice::new(
        DeviceKind::Gpu,
        FlopRate::from_tflops(19.5),
        0.60,
        Memory::new(
            Bytes::from_gib(40),
            crate::units::Bandwidth::from_gb_per_s(1555.0),
            0.35,
        ),
        Duration::from_micros(6.0),
    )
}

/// Preset: dual-socket Intel Skylake trainer CPU (paper Table I "CPU
/// System": 2 sockets, 256 GB DRAM).
pub fn skylake_dual_socket() -> ComputeDevice {
    ComputeDevice::new(
        DeviceKind::Cpu,
        // 2 sockets x 20 cores x 2.0 GHz x 32 FP32 FLOP/cycle (AVX-512 FMA)
        // = 2.56 TFLOP/s peak.
        FlopRate::from_tflops(2.56),
        // Framework-level MLP kernels on CPU sustain ~30% of peak.
        0.30,
        crate::memory::ddr4_dual_socket(),
        Duration::from_micros(1.0),
    )
}

/// Preset: Zion's eight-socket CPU complex (Table I: 8-socket CPU, ~2 TB,
/// ~1 TB/s).
pub fn zion_cpu_complex() -> ComputeDevice {
    ComputeDevice::new(
        DeviceKind::Cpu,
        // Four times the dual-socket complex.
        FlopRate::from_tflops(10.2),
        0.30,
        crate::memory::zion_system_memory(),
        Duration::from_micros(1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Flops;

    #[test]
    fn sustained_below_peak() {
        let d = v100(Bytes::from_gib(16));
        assert!(d.sustained_flop_rate().as_tflops() < d.peak_flop_rate().as_tflops());
    }

    #[test]
    fn v100_sku_memory() {
        assert_eq!(
            v100(Bytes::from_gib(16)).memory().capacity(),
            Bytes::from_gib(16)
        );
        assert_eq!(
            v100(Bytes::from_gib(32)).memory().capacity(),
            Bytes::from_gib(32)
        );
    }

    #[test]
    fn gpu_flops_dominate_cpu() {
        let gpu = v100(Bytes::from_gib(32));
        let cpu = skylake_dual_socket();
        let work = Flops::new(10_000_000_000);
        let t_gpu = gpu.sustained_flop_rate().execution_time(work);
        let t_cpu = cpu.sustained_flop_rate().execution_time(work);
        assert!(t_gpu.as_secs() * 5.0 < t_cpu.as_secs());
    }

    #[test]
    fn ablation_zeroes_overhead() {
        let d = v100(Bytes::from_gib(16)).without_kernel_overhead();
        assert_eq!(d.kernel_overhead(), Duration::ZERO);
    }

    #[test]
    fn zion_cpu_is_four_dual_sockets() {
        let z = zion_cpu_complex();
        let d = skylake_dual_socket();
        let ratio = z.peak_flop_rate().as_tflops() / d.peak_flop_rate().as_tflops();
        assert!((ratio - 4.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn efficiency_validated() {
        ComputeDevice::new(
            DeviceKind::Cpu,
            FlopRate::from_tflops(1.0),
            1.5,
            crate::memory::ddr4_dual_socket(),
            Duration::ZERO,
        );
    }
}
