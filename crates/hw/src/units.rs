//! Strongly typed physical quantities.
//!
//! All simulator arithmetic flows through these newtypes so that a byte count
//! can never silently be treated as a bandwidth. Conversions are explicit
//! and the only place raw `f64`s appear is at the boundary.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

const KIB: u64 = 1 << 10;
const MIB: u64 = 1 << 20;
const GIB: u64 = 1 << 30;
const TIB: u64 = 1 << 40;

/// A byte count.
///
/// # Example
///
/// ```
/// use recsim_hw::units::Bytes;
///
/// let hbm = Bytes::from_gib(32);
/// assert_eq!(hbm.as_u64(), 32 * (1 << 30));
/// assert!(Bytes::from_tib(2) > hbm);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Constructs from a raw byte count.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Constructs from kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * KIB)
    }

    /// Constructs from mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * MIB)
    }

    /// Constructs from gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        Bytes(gib * GIB)
    }

    /// Constructs from tebibytes.
    pub const fn from_tib(tib: u64) -> Self {
        Bytes(tib * TIB)
    }

    /// Raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Byte count as a float (for roofline division).
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Value in gibibytes.
    pub fn as_gib(self) -> f64 {
        self.0 as f64 / GIB as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Checked multiplication by a count.
    pub fn checked_mul(self, n: u64) -> Option<Bytes> {
        self.0.checked_mul(n).map(Bytes)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= TIB {
            write!(f, "{:.2} TiB", b as f64 / TIB as f64)
        } else if b >= GIB {
            write!(f, "{:.2} GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.2} MiB", b as f64 / MIB as f64)
        } else if b >= KIB {
            write!(f, "{:.2} KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b} B")
        }
    }
}

/// A data-movement rate in bytes per second.
///
/// # Example
///
/// ```
/// use recsim_hw::units::{Bandwidth, Bytes};
///
/// let hbm2 = Bandwidth::from_gb_per_s(900.0);
/// let t = hbm2.transfer_time(Bytes::from_gib(1));
/// assert!(t.as_secs() > 0.001 && t.as_secs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Constructs from bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    pub fn from_bytes_per_s(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "bandwidth must be positive");
        Bandwidth(rate)
    }

    /// Constructs from decimal gigabytes per second (vendor convention).
    pub fn from_gb_per_s(gb: f64) -> Self {
        Self::from_bytes_per_s(gb * 1e9)
    }

    /// Constructs from a line rate in gigabits per second.
    pub fn from_gbit_per_s(gbit: f64) -> Self {
        Self::from_bytes_per_s(gbit * 1e9 / 8.0)
    }

    /// Rate in bytes per second.
    pub fn as_bytes_per_s(self) -> f64 {
        self.0
    }

    /// Rate in decimal GB/s.
    pub fn as_gb_per_s(self) -> f64 {
        self.0 / 1e9
    }

    /// Time to move `bytes` at this rate.
    pub fn transfer_time(self, bytes: Bytes) -> Duration {
        Duration::from_secs(bytes.as_f64() / self.0)
    }

    /// Scales the rate by an efficiency factor in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn derated(self, factor: f64) -> Bandwidth {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "derating factor must be in (0, 1]"
        );
        Bandwidth(self.0 * factor)
    }
}

impl Mul<f64> for Bandwidth {
    type Output = Bandwidth;
    fn mul(self, rhs: f64) -> Bandwidth {
        Bandwidth::from_bytes_per_s(self.0 * rhs)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} GB/s", self.as_gb_per_s())
    }
}

/// A floating-point-operation count.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Flops(u64);

impl Flops {
    /// Zero flops.
    pub const ZERO: Flops = Flops(0);

    /// Constructs from a raw operation count.
    pub const fn new(ops: u64) -> Self {
        Flops(ops)
    }

    /// Raw operation count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Operation count as a float.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Flops {
    type Output = Flops;
    fn add(self, rhs: Flops) -> Flops {
        Flops(self.0 + rhs.0)
    }
}

impl AddAssign for Flops {
    fn add_assign(&mut self, rhs: Flops) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Flops {
    type Output = Flops;
    fn mul(self, rhs: u64) -> Flops {
        Flops(self.0 * rhs)
    }
}

impl Sum for Flops {
    fn sum<I: Iterator<Item = Flops>>(iter: I) -> Flops {
        Flops(iter.map(|f| f.0).sum())
    }
}

impl fmt::Display for Flops {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0 as f64;
        if v >= 1e12 {
            write!(f, "{:.2} TFLOP", v / 1e12)
        } else if v >= 1e9 {
            write!(f, "{:.2} GFLOP", v / 1e9)
        } else if v >= 1e6 {
            write!(f, "{:.2} MFLOP", v / 1e6)
        } else {
            write!(f, "{v:.0} FLOP")
        }
    }
}

/// A compute rate in floating-point operations per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct FlopRate(f64);

impl FlopRate {
    /// Constructs from operations per second.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    pub fn from_flops_per_s(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "flop rate must be positive");
        FlopRate(rate)
    }

    /// Constructs from teraFLOP/s.
    pub fn from_tflops(t: f64) -> Self {
        Self::from_flops_per_s(t * 1e12)
    }

    /// Constructs from gigaFLOP/s.
    pub fn from_gflops(g: f64) -> Self {
        Self::from_flops_per_s(g * 1e9)
    }

    /// Rate in operations per second.
    pub fn as_flops_per_s(self) -> f64 {
        self.0
    }

    /// Rate in teraFLOP/s.
    pub fn as_tflops(self) -> f64 {
        self.0 / 1e12
    }

    /// Time to execute `flops` at this rate.
    pub fn execution_time(self, flops: Flops) -> Duration {
        Duration::from_secs(flops.as_f64() / self.0)
    }

    /// Scales the rate by an efficiency factor in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn derated(self, factor: f64) -> FlopRate {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "derating factor must be in (0, 1]"
        );
        FlopRate(self.0 * factor)
    }
}

impl Mul<f64> for FlopRate {
    type Output = FlopRate;
    fn mul(self, rhs: f64) -> FlopRate {
        FlopRate::from_flops_per_s(self.0 * rhs)
    }
}

impl fmt::Display for FlopRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} TFLOP/s", self.as_tflops())
    }
}

/// A simulated time span in seconds.
///
/// Distinct from `std::time::Duration` because simulation time is fractional
/// and arithmetic-heavy; negative durations are rejected at construction.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Duration(f64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0.0);

    /// Constructs from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs >= 0.0 && !secs.is_nan(), "duration must be >= 0");
        Duration(secs)
    }

    /// Constructs from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Constructs from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Value in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Value in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The larger of two durations.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration((self.0 - rhs.0).max(0.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: f64) -> Duration {
        Duration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for Duration {
    type Output = Duration;
    fn div(self, rhs: f64) -> Duration {
        Duration::from_secs(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 1.0 {
            write!(f, "{s:.3} s")
        } else if s >= 1e-3 {
            write!(f, "{:.3} ms", s * 1e3)
        } else {
            write!(f, "{:.1} us", s * 1e6)
        }
    }
}

/// Electrical power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power(f64);

impl Power {
    /// Constructs from watts.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is negative or not finite.
    pub fn from_watts(watts: f64) -> Self {
        assert!(
            watts >= 0.0 && watts.is_finite(),
            "power must be non-negative"
        );
        Power(watts)
    }

    /// Value in watts.
    pub fn as_watts(self) -> f64 {
        self.0
    }

    /// Value in kilowatts.
    pub fn as_kilowatts(self) -> f64 {
        self.0 / 1e3
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power::from_watts(self.0 * rhs)
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        Power(iter.map(|p| p.0).sum())
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e3 {
            write!(f, "{:.2} kW", self.0 / 1e3)
        } else {
            write!(f, "{:.0} W", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_conversions() {
        assert_eq!(Bytes::from_kib(1).as_u64(), 1024);
        assert_eq!(Bytes::from_gib(2), Bytes::from_mib(2048));
        assert_eq!(Bytes::from_tib(1).as_gib(), 1024.0);
    }

    #[test]
    fn bytes_display_picks_unit() {
        assert_eq!(Bytes::new(512).to_string(), "512 B");
        assert_eq!(Bytes::from_gib(3).to_string(), "3.00 GiB");
        assert_eq!(Bytes::from_tib(2).to_string(), "2.00 TiB");
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::from_gb_per_s(1.0);
        let t = bw.transfer_time(Bytes::new(1_000_000_000));
        assert!((t.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gbit_is_an_eighth_of_gbyte() {
        let a = Bandwidth::from_gbit_per_s(8.0);
        let b = Bandwidth::from_gb_per_s(1.0);
        assert!((a.as_bytes_per_s() - b.as_bytes_per_s()).abs() < 1.0);
    }

    #[test]
    fn flop_rate_execution_time() {
        let rate = FlopRate::from_tflops(1.0);
        let t = rate.execution_time(Flops::new(2_000_000_000_000));
        assert!((t.as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_millis(2.0);
        let b = Duration::from_micros(500.0);
        assert!(((a + b).as_millis() - 2.5).abs() < 1e-12);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!(b.saturating_sub(a), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = ">= 0")]
    fn negative_duration_rejected() {
        Duration::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        Bandwidth::from_bytes_per_s(0.0);
    }

    #[test]
    fn derating_bounds() {
        let bw = Bandwidth::from_gb_per_s(100.0);
        assert!((bw.derated(0.5).as_gb_per_s() - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn derating_above_one_rejected() {
        Bandwidth::from_gb_per_s(1.0).derated(1.5);
    }

    #[test]
    fn sums() {
        let total: Bytes = [Bytes::new(1), Bytes::new(2)].into_iter().sum();
        assert_eq!(total, Bytes::new(3));
        let t: Duration = [Duration::from_secs(1.0), Duration::from_secs(2.0)]
            .into_iter()
            .sum();
        assert!((t.as_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn power_display() {
        assert_eq!(Power::from_watts(4380.0).to_string(), "4.38 kW");
        assert_eq!(Power::from_watts(600.0).to_string(), "600 W");
    }
}
