//! Utilization-dependent power draw.
//!
//! The paper reports training efficiency as throughput per watt and states
//! that the "power capacity requirement of a Big Basin server is 7.3 times
//! higher than the dual-socket CPU server". The [`PowerModel`] captures a
//! platform's provisioned envelope plus a simple idle/dynamic split so that
//! perf-per-watt comparisons (Figure 10 right panel, Table III) can be
//! computed.

use crate::units::Power;
use serde::{Deserialize, Serialize};

/// A linear utilization-to-power model: `P(u) = envelope * (idle + (1 - idle) * u)`.
///
/// # Example
///
/// ```
/// use recsim_hw::PowerModel;
/// use recsim_hw::units::Power;
///
/// let m = PowerModel::new(Power::from_watts(1000.0), 0.4);
/// assert_eq!(m.draw(0.0).as_watts(), 400.0);
/// assert_eq!(m.draw(1.0).as_watts(), 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    envelope: Power,
    idle_fraction: f64,
}

impl PowerModel {
    /// Creates a power model.
    ///
    /// # Panics
    ///
    /// Panics if `idle_fraction` is outside `[0, 1]`.
    pub fn new(envelope: Power, idle_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&idle_fraction),
            "idle fraction must be in [0, 1]"
        );
        Self {
            envelope,
            idle_fraction,
        }
    }

    /// The provisioned (maximum) power.
    pub fn envelope(&self) -> Power {
        self.envelope
    }

    /// Fraction of the envelope drawn when idle.
    pub fn idle_fraction(&self) -> f64 {
        self.idle_fraction
    }

    /// Power drawn at the given utilization in `[0, 1]` (clamped).
    pub fn draw(&self, utilization: f64) -> Power {
        let u = utilization.clamp(0.0, 1.0);
        self.envelope * (self.idle_fraction + (1.0 - self.idle_fraction) * u)
    }

    /// Perf-per-watt for a given throughput (examples/s) and utilization.
    ///
    /// Returns examples per joule.
    pub fn efficiency(&self, throughput: f64, utilization: f64) -> f64 {
        throughput / self.draw(utilization).as_watts()
    }

    /// The dual-socket CPU server envelope — normalization baseline.
    pub fn cpu_server() -> Self {
        PowerModel::new(Power::from_watts(600.0), 0.45)
    }

    /// Big Basin: the paper states 7.3× the CPU server's power capacity.
    pub fn big_basin() -> Self {
        PowerModel::new(Power::from_watts(600.0 * 7.3), 0.30)
    }

    /// Zion: documented assumption of ≈10.5× the CPU server (8 sockets +
    /// 8 V100s + fabric); the paper does not disclose the number.
    pub fn zion() -> Self {
        PowerModel::new(Power::from_watts(600.0 * 10.5), 0.30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_is_monotone_in_utilization() {
        let m = PowerModel::big_basin();
        assert!(m.draw(0.2).as_watts() < m.draw(0.8).as_watts());
    }

    #[test]
    fn draw_clamps_utilization() {
        let m = PowerModel::cpu_server();
        assert_eq!(m.draw(-1.0), m.draw(0.0));
        assert_eq!(m.draw(2.0), m.draw(1.0));
    }

    #[test]
    fn big_basin_envelope_ratio_is_7_3() {
        let ratio = PowerModel::big_basin().envelope().as_watts()
            / PowerModel::cpu_server().envelope().as_watts();
        assert!((ratio - 7.3).abs() < 1e-9);
    }

    #[test]
    fn efficiency_divides_by_power() {
        let m = PowerModel::new(Power::from_watts(100.0), 0.0);
        assert!((m.efficiency(50.0, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "[0, 1]")]
    fn idle_fraction_validated() {
        PowerModel::new(Power::from_watts(1.0), 1.5);
    }
}
