//! Interconnect links: NVLink, PCIe, Ethernet, InfiniBand.

use crate::units::{Bandwidth, Bytes, Duration};
use serde::{Deserialize, Serialize};

/// A point-to-point or shared interconnect with bandwidth and per-message
/// latency.
///
/// The latency term matters: remote embedding lookups (placement on remote
/// CPU parameter servers) pay a round trip per request batch, which is one of
/// the two reasons the paper finds remote placement slow (the other being
/// host-CPU work for send/receive).
///
/// # Example
///
/// ```
/// use recsim_hw::Link;
/// use recsim_hw::units::Bytes;
///
/// let nvlink = Link::nvlink_hybrid_cube_mesh();
/// let eth = Link::ethernet_100g();
/// let payload = Bytes::from_mib(64);
/// assert!(nvlink.transfer_time(payload, 1).as_secs()
///     < eth.transfer_time(payload, 1).as_secs());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    bandwidth: Bandwidth,
    latency: Duration,
    /// Protocol efficiency (header/ack overhead) applied to the line rate.
    efficiency: f64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is outside `(0, 1]`.
    pub fn new(bandwidth: Bandwidth, latency: Duration, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "link efficiency must be in (0, 1]"
        );
        Self {
            bandwidth,
            latency,
            efficiency,
        }
    }

    /// Line-rate bandwidth before protocol overhead.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Bandwidth after protocol overhead.
    pub fn effective_bandwidth(&self) -> Bandwidth {
        self.bandwidth.derated(self.efficiency)
    }

    /// Per-message latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Time to move `bytes` split across `messages` messages.
    ///
    /// # Panics
    ///
    /// Panics if `messages == 0`.
    pub fn transfer_time(&self, bytes: Bytes, messages: u64) -> Duration {
        assert!(messages > 0, "a transfer needs at least one message");
        self.effective_bandwidth().transfer_time(bytes) + self.latency * messages as f64
    }

    /// NVLink as wired in Big Basin's eight-GPU hybrid cube mesh: each V100
    /// has 6 links at 25 GB/s per direction; all-to-all style traffic sees
    /// roughly 150 GB/s per GPU egress.
    pub fn nvlink_hybrid_cube_mesh() -> Self {
        Link::new(
            Bandwidth::from_gb_per_s(150.0),
            Duration::from_micros(2.0),
            0.90,
        )
    }

    /// PCIe 3.0 x16 between host and one GPU (~16 GB/s line, ~12 GB/s
    /// effective).
    pub fn pcie3_x16() -> Self {
        Link::new(
            Bandwidth::from_gb_per_s(16.0),
            Duration::from_micros(5.0),
            0.78,
        )
    }

    /// PCIe 4.0 x16 (~32 GB/s line, ~25 GB/s effective).
    pub fn pcie4_x16() -> Self {
        Link::new(
            Bandwidth::from_gb_per_s(32.0),
            Duration::from_micros(4.0),
            0.78,
        )
    }

    /// 200 Gbps datacenter Ethernet (DGX-A100 generation).
    pub fn ethernet_200g() -> Self {
        Link::new(
            Bandwidth::from_gbit_per_s(200.0),
            Duration::from_micros(15.0),
            0.85,
        )
    }

    /// 25 Gbps datacenter Ethernet (Table I, CPU system).
    pub fn ethernet_25g() -> Self {
        Link::new(
            Bandwidth::from_gbit_per_s(25.0),
            Duration::from_micros(30.0),
            0.85,
        )
    }

    /// 100 Gbps datacenter Ethernet (Table I, Big Basin).
    pub fn ethernet_100g() -> Self {
        Link::new(
            Bandwidth::from_gbit_per_s(100.0),
            Duration::from_micros(20.0),
            0.85,
        )
    }

    /// Third-generation NVLink as wired in DGX-A100 (12 links per GPU at
    /// 25 GB/s per direction; ~300 GB/s egress via NVSwitch).
    pub fn nvlink3_nvswitch() -> Self {
        Link::new(
            Bandwidth::from_gb_per_s(300.0),
            Duration::from_micros(1.5),
            0.92,
        )
    }

    /// Zion's 4× InfiniBand 100 Gbps NICs (Table I), aggregated.
    pub fn infiniband_4x100g() -> Self {
        Link::new(
            Bandwidth::from_gbit_per_s(400.0),
            Duration::from_micros(3.0),
            0.90,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_messages() {
        let eth = Link::ethernet_100g();
        let one = eth.transfer_time(Bytes::new(64), 1);
        // 64 bytes takes nanoseconds at 100 Gbps; latency is 20 us.
        assert!(one.as_micros() > 19.0 && one.as_micros() < 22.0);
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let eth = Link::ethernet_100g();
        let t = eth.transfer_time(Bytes::from_gib(1), 1);
        assert!(t.as_secs() > 0.09); // >= 1 GiB / (100 Gbit * 0.85)
    }

    #[test]
    fn message_count_multiplies_latency() {
        let eth = Link::ethernet_25g();
        let one = eth.transfer_time(Bytes::from_kib(1), 1);
        let ten = eth.transfer_time(Bytes::from_kib(1), 10);
        assert!(ten.as_secs() > one.as_secs() * 5.0);
    }

    #[test]
    fn link_ordering_matches_hardware() {
        let nv = Link::nvlink_hybrid_cube_mesh().effective_bandwidth();
        let pcie = Link::pcie3_x16().effective_bandwidth();
        let ib = Link::infiniband_4x100g().effective_bandwidth();
        let e100 = Link::ethernet_100g().effective_bandwidth();
        let e25 = Link::ethernet_25g().effective_bandwidth();
        assert!(nv > ib && ib > pcie && pcie > e100 && e100 > e25);
    }

    #[test]
    #[should_panic(expected = "at least one message")]
    fn zero_messages_rejected() {
        Link::pcie3_x16().transfer_time(Bytes::new(1), 0);
    }
}
