//! Hardware substrate models for `recsim`.
//!
//! The paper compares three training platforms (its Table I): a dual-socket
//! CPU server, the Big Basin 8-GPU server, and the prototype Zion
//! large-memory server. This crate models the pieces of those machines that
//! determine training throughput:
//!
//! * [`units`] — strongly typed quantities (bytes, bandwidths, durations,
//!   FLOP counts, power) so a GB/s can never be added to a GB,
//! * [`Memory`] — capacity + bandwidth with a *random-access efficiency*
//!   that penalizes irregular embedding gathers,
//! * [`ComputeDevice`] — CPUs and GPUs as roofline compute engines with
//!   per-kernel launch overheads,
//! * [`Link`] — interconnects (NVLink, PCIe, Ethernet, InfiniBand),
//! * [`Platform`] — full machines assembled from the above, with presets
//!   [`Platform::dual_socket_cpu`], [`Platform::big_basin`] and
//!   [`Platform::zion_prototype`],
//! * [`ScmDevice`] — an optional storage-class-memory / NVMe tier below
//!   host DDR (capacity, random-read latency, sustained bandwidth), the
//!   cold end of the per-row sharding hierarchy,
//! * [`roofline`] — the cost model mapping a [`roofline::Work`] quantum onto
//!   a device,
//! * [`power`] — utilization-dependent power draw for perf-per-watt numbers.
//!
//! # Example
//!
//! ```
//! use recsim_hw::{Platform, units::Bytes};
//!
//! let bb = Platform::big_basin(Bytes::from_gib(32));
//! assert_eq!(bb.gpus().len(), 8);
//! assert!(bb.gpu_interconnect().is_some(), "Big Basin has NVLink");
//!
//! let zion = Platform::zion_prototype();
//! assert!(zion.gpu_interconnect().is_none(), "prototype Zion routes GPU traffic via CPUs");
//! assert!(zion.host().memory().capacity() > bb.host().memory().capacity());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod link;
pub mod memory;
pub mod platform;
pub mod power;
pub mod roofline;
pub mod scm;
pub mod units;

pub use device::{ComputeDevice, DeviceKind};
pub use link::Link;
pub use memory::{AccessPattern, Memory};
pub use platform::{Platform, PlatformKind};
pub use scm::ScmDevice;
pub use power::PowerModel;
pub use roofline::Work;
