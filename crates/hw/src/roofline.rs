//! The roofline cost model: mapping a quantum of work onto a device.

use crate::device::ComputeDevice;
use crate::memory::AccessPattern;
use crate::units::{Bytes, Duration, Flops};
use serde::{Deserialize, Serialize};

/// A quantum of work: arithmetic, data movement and kernel count.
///
/// Execution time on a device is
/// `kernels * overhead + max(flops / sustained_rate, bytes / bandwidth(pattern))`
/// — compute and memory streams overlap (the roofline assumption), while
/// launch overhead is serial.
///
/// # Example
///
/// ```
/// use recsim_hw::{Work, AccessPattern, device::v100};
/// use recsim_hw::units::{Bytes, Flops};
///
/// let gemm = Work::new(Flops::new(1_000_000_000), Bytes::from_mib(64),
///                      AccessPattern::Sequential, 3);
/// let t = gemm.time_on(&v100(Bytes::from_gib(32)));
/// assert!(t.as_secs() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Work {
    flops: Flops,
    bytes: Bytes,
    pattern: AccessPattern,
    kernels: u64,
}

impl Work {
    /// Creates a work quantum.
    pub fn new(flops: Flops, bytes: Bytes, pattern: AccessPattern, kernels: u64) -> Self {
        Self {
            flops,
            bytes,
            pattern,
            kernels,
        }
    }

    /// Pure compute work with sequential operand streaming.
    pub fn compute(flops: Flops, bytes: Bytes, kernels: u64) -> Self {
        Self::new(flops, bytes, AccessPattern::Sequential, kernels)
    }

    /// Pure data movement with random access (embedding gathers/scatters).
    pub fn gather(bytes: Bytes, kernels: u64) -> Self {
        Self::new(Flops::ZERO, bytes, AccessPattern::Random, kernels)
    }

    /// The no-op quantum.
    pub fn none() -> Self {
        Self::new(Flops::ZERO, Bytes::ZERO, AccessPattern::Sequential, 0)
    }

    /// Arithmetic operations.
    pub fn flops(&self) -> Flops {
        self.flops
    }

    /// Bytes moved through the device memory.
    pub fn bytes(&self) -> Bytes {
        self.bytes
    }

    /// The memory access pattern.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// Number of kernels launched.
    pub fn kernels(&self) -> u64 {
        self.kernels
    }

    /// Combines two quanta executed back-to-back on the same device.
    ///
    /// If either side is random-access the combined quantum is treated as
    /// random (conservative).
    pub fn merge(&self, other: &Work) -> Work {
        Work {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
            pattern: if self.pattern == AccessPattern::Random
                || other.pattern == AccessPattern::Random
            {
                AccessPattern::Random
            } else {
                AccessPattern::Sequential
            },
            kernels: self.kernels + other.kernels,
        }
    }

    /// Execution time on `device` under the roofline model.
    pub fn time_on(&self, device: &ComputeDevice) -> Duration {
        let compute = if self.flops == Flops::ZERO {
            Duration::ZERO
        } else {
            device.sustained_flop_rate().execution_time(self.flops)
        };
        let mem = if self.bytes == Bytes::ZERO {
            Duration::ZERO
        } else {
            device.memory().access_time(self.bytes, self.pattern)
        };
        device.kernel_overhead() * self.kernels as f64 + compute.max(mem)
    }

    /// Whether this quantum is memory-bound on `device` (its memory time
    /// exceeds its compute time).
    pub fn is_memory_bound_on(&self, device: &ComputeDevice) -> bool {
        let compute = device.sustained_flop_rate().execution_time(self.flops);
        let mem = device.memory().access_time(self.bytes, self.pattern);
        mem > compute
    }

    /// Arithmetic intensity in FLOP/byte; `f64::INFINITY` when no bytes move.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes == Bytes::ZERO {
            f64::INFINITY
        } else {
            self.flops.as_f64() / self.bytes.as_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{skylake_dual_socket, v100};

    #[test]
    fn compute_bound_work_scales_with_flops() {
        let gpu = v100(Bytes::from_gib(32));
        let small = Work::compute(Flops::new(1_000_000_000), Bytes::from_kib(1), 1);
        let big = Work::compute(Flops::new(10_000_000_000), Bytes::from_kib(1), 1);
        let ratio = big.time_on(&gpu).as_secs() / small.time_on(&gpu).as_secs();
        assert!(ratio > 5.0 && ratio < 11.0);
    }

    #[test]
    fn gather_is_memory_bound() {
        let gpu = v100(Bytes::from_gib(32));
        let g = Work::gather(Bytes::from_mib(256), 1);
        assert!(g.is_memory_bound_on(&gpu));
        assert_eq!(g.arithmetic_intensity(), 0.0);
    }

    #[test]
    fn overhead_dominates_tiny_kernels() {
        let gpu = v100(Bytes::from_gib(32));
        let tiny = Work::compute(Flops::new(1000), Bytes::new(1000), 10);
        let t = tiny.time_on(&gpu);
        // 10 kernels x 8us = 80us floor.
        assert!(t.as_micros() >= 80.0);
    }

    #[test]
    fn merge_sums_and_keeps_random() {
        let a = Work::compute(Flops::new(10), Bytes::new(20), 1);
        let b = Work::gather(Bytes::new(5), 2);
        let m = a.merge(&b);
        assert_eq!(m.flops(), Flops::new(10));
        assert_eq!(m.bytes(), Bytes::new(25));
        assert_eq!(m.kernels(), 3);
        assert_eq!(m.pattern(), AccessPattern::Random);
    }

    #[test]
    fn roofline_takes_max_not_sum() {
        let cpu = skylake_dual_socket();
        let balanced = Work::compute(Flops::new(1_000_000_000), Bytes::from_gib(1), 0);
        let t = balanced.time_on(&cpu).as_secs();
        let compute = cpu
            .sustained_flop_rate()
            .execution_time(Flops::new(1_000_000_000))
            .as_secs();
        let mem = cpu
            .memory()
            .access_time(Bytes::from_gib(1), AccessPattern::Sequential)
            .as_secs();
        assert!((t - compute.max(mem)).abs() < 1e-12);
        assert!(t < compute + mem);
    }

    #[test]
    fn none_takes_no_time() {
        let gpu = v100(Bytes::from_gib(16));
        assert_eq!(Work::none().time_on(&gpu), Duration::ZERO);
    }
}
