//! Memory devices: capacity, bandwidth and access-pattern efficiency.

use crate::units::{Bandwidth, Bytes, Duration};
use serde::{Deserialize, Serialize};

/// How a workload touches memory.
///
/// Embedding-table gathers are the canonical `Random` workload in the paper:
/// each lookup touches a `d`-float row at an arbitrary offset, so the memory
/// system achieves only a fraction of its streaming bandwidth. MLP weight
/// reads are `Sequential`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Streaming, prefetch-friendly access (dense GEMM operands).
    Sequential,
    /// Irregular, pointer-chasing access (embedding row gathers/scatters).
    Random,
}

/// A memory device: capacity plus a two-regime bandwidth model.
///
/// `random_access_efficiency` is the fraction of streaming bandwidth
/// achieved by irregular accesses; DESIGN.md lists it as an explicit
/// ablation knob (`ablation_random_access`).
///
/// # Example
///
/// ```
/// use recsim_hw::{Memory, AccessPattern};
/// use recsim_hw::units::{Bandwidth, Bytes};
///
/// let hbm2 = Memory::new(Bytes::from_gib(32), Bandwidth::from_gb_per_s(900.0), 0.35);
/// let seq = hbm2.effective_bandwidth(AccessPattern::Sequential);
/// let rnd = hbm2.effective_bandwidth(AccessPattern::Random);
/// assert!(rnd.as_gb_per_s() < seq.as_gb_per_s());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Memory {
    capacity: Bytes,
    stream_bandwidth: Bandwidth,
    random_access_efficiency: f64,
}

impl Memory {
    /// Creates a memory device.
    ///
    /// # Panics
    ///
    /// Panics if `random_access_efficiency` is outside `(0, 1]`.
    pub fn new(
        capacity: Bytes,
        stream_bandwidth: Bandwidth,
        random_access_efficiency: f64,
    ) -> Self {
        assert!(
            random_access_efficiency > 0.0 && random_access_efficiency <= 1.0,
            "random access efficiency must be in (0, 1]"
        );
        Self {
            capacity,
            stream_bandwidth,
            random_access_efficiency,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    /// Peak streaming bandwidth.
    pub fn stream_bandwidth(&self) -> Bandwidth {
        self.stream_bandwidth
    }

    /// The fraction of streaming bandwidth available to random accesses.
    pub fn random_access_efficiency(&self) -> f64 {
        self.random_access_efficiency
    }

    /// Bandwidth available under the given access pattern.
    pub fn effective_bandwidth(&self, pattern: AccessPattern) -> Bandwidth {
        match pattern {
            AccessPattern::Sequential => self.stream_bandwidth,
            AccessPattern::Random => self.stream_bandwidth.derated(self.random_access_efficiency),
        }
    }

    /// Time to move `bytes` under the given pattern.
    pub fn access_time(&self, bytes: Bytes, pattern: AccessPattern) -> Duration {
        self.effective_bandwidth(pattern).transfer_time(bytes)
    }

    /// Whether a dataset of the given size fits in this memory.
    pub fn fits(&self, bytes: Bytes) -> bool {
        bytes <= self.capacity
    }

    /// Returns a copy with the random-access penalty removed — the ablation
    /// configuration in which embedding gathers run at streaming bandwidth.
    pub fn without_random_penalty(&self) -> Memory {
        Memory {
            random_access_efficiency: 1.0,
            ..*self
        }
    }

    /// Returns a copy scaled to represent `n` identical channels/devices
    /// aggregated (capacity and bandwidth both multiply).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn aggregated(&self, n: u64) -> Memory {
        assert!(n > 0, "cannot aggregate zero memories");
        Memory {
            capacity: self.capacity * n,
            stream_bandwidth: self.stream_bandwidth * n as f64,
            random_access_efficiency: self.random_access_efficiency,
        }
    }
}

/// Preset: one V100's HBM2 stack (used by both Big Basin and Zion).
pub fn hbm2_v100(capacity: Bytes) -> Memory {
    // 900 GB/s streaming; random gathers of short embedding rows reach ~35%
    // of streaming bandwidth (row granularity beats DRAM page locality).
    Memory::new(capacity, Bandwidth::from_gb_per_s(900.0), 0.35)
}

/// Preset: dual-socket Skylake DDR4 (256 GB, ~128 GB/s streaming).
pub fn ddr4_dual_socket() -> Memory {
    // 2 sockets x 6 channels x ~21.3 GB/s, derated for realistic STREAM.
    Memory::new(Bytes::from_gib(256), Bandwidth::from_gb_per_s(128.0), 0.25)
}

/// Preset: Zion's eight-socket system memory (~2 TB, ~1 TB/s), Table I.
pub fn zion_system_memory() -> Memory {
    Memory::new(Bytes::from_tib(2), Bandwidth::from_gb_per_s(1000.0), 0.25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_slower_than_sequential() {
        let m = hbm2_v100(Bytes::from_gib(16));
        let seq = m.access_time(Bytes::from_gib(1), AccessPattern::Sequential);
        let rnd = m.access_time(Bytes::from_gib(1), AccessPattern::Random);
        assert!(rnd.as_secs() > seq.as_secs());
    }

    #[test]
    fn fits_respects_capacity() {
        let m = ddr4_dual_socket();
        assert!(m.fits(Bytes::from_gib(256)));
        assert!(!m.fits(Bytes::from_gib(257)));
    }

    #[test]
    fn ablation_removes_penalty() {
        let m = hbm2_v100(Bytes::from_gib(32)).without_random_penalty();
        assert_eq!(
            m.effective_bandwidth(AccessPattern::Random),
            m.effective_bandwidth(AccessPattern::Sequential)
        );
    }

    #[test]
    fn aggregation_scales_both_axes() {
        let one = hbm2_v100(Bytes::from_gib(32));
        let eight = one.aggregated(8);
        assert_eq!(eight.capacity(), Bytes::from_gib(256));
        assert!((eight.stream_bandwidth().as_gb_per_s() - 7200.0).abs() < 1e-6);
    }

    #[test]
    fn presets_match_table_one() {
        assert_eq!(ddr4_dual_socket().capacity(), Bytes::from_gib(256));
        assert_eq!(zion_system_memory().capacity(), Bytes::from_tib(2));
        assert!(
            zion_system_memory().stream_bandwidth().as_gb_per_s()
                > ddr4_dual_socket().stream_bandwidth().as_gb_per_s() * 7.0
        );
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn efficiency_validated() {
        Memory::new(Bytes::from_gib(1), Bandwidth::from_gb_per_s(1.0), 0.0);
    }
}
