//! RV015 fixture: a result-producing module whose output order depends on
//! hasher state. Must trip RV015 and nothing else.
use std::collections::HashMap;

pub fn frequencies(ids: &[u32]) -> Vec<(u32, u64)> {
    let mut freq: HashMap<u32, u64> = HashMap::new();
    for &id in ids {
        *freq.entry(id).or_insert(0) += 1;
    }
    freq.into_iter().collect()
}
