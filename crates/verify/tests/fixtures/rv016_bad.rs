//! RV016 fixture: a float reduction in pool-adjacent code without a
//! `detsan: reduction-order` annotation. Must trip RV016 and nothing else.

pub fn mean(values: &[f32]) -> f32 {
    let width = recsim_pool::thread_count();
    let total = values.iter().sum::<f32>();
    total / values.len().max(width) as f32
}
