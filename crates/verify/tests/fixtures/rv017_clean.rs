//! Clean twin of `rv017_bad.rs`: the stamp is a pure function of its
//! inputs, so reruns reproduce it exactly.

pub fn stamp(seed: u64, step: u64) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(step)
}
