//! Clean twin of `rv017_prof_bad.rs`: the scope takes its timestamps from
//! the profiler's clock module (the single RV017-exempt clock reader), so
//! this file itself performs no banned host-clock read. The `Instant`
//! *type* never appears; only externally-measured nanosecond offsets flow
//! through.

pub struct Scope {
    start_ns: u64,
}

pub fn open(now_ns: u64) -> Scope {
    Scope { start_ns: now_ns }
}

pub fn close(scope: Scope, now_ns: u64) -> u64 {
    now_ns.saturating_sub(scope.start_ns)
}
