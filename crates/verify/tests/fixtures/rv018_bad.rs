//! RV018 fixture: a parallel sweep closure mutating shared state, so the
//! side effects land in worker-completion order. Must trip RV018 and
//! nothing else.

pub fn run(points: &[u32], hits: &std::sync::Mutex<Vec<u32>>) -> Vec<u32> {
    recsim_pool::par_map(points, |&p| {
        hits.lock().expect("poisoned").push(p);
        p * 2
    })
}
