//! RV017 fixture: wall-clock entropy feeding a result. Must trip RV017 and
//! nothing else.

pub fn stamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
