//! Clean twin of `rv016_bad.rs`: the reduction carries the annotation
//! declaring its evaluation order fixed.

pub fn mean(values: &[f32]) -> f32 {
    let width = recsim_pool::thread_count();
    // detsan: reduction-order — serial left-to-right iterator sum.
    let total = values.iter().sum::<f32>();
    total / values.len().max(width) as f32
}
