//! Clean twin of `rv015_bad.rs`: same shape, deterministic iteration order.
use std::collections::BTreeMap;

pub fn frequencies(ids: &[u32]) -> Vec<(u32, u64)> {
    let mut freq: BTreeMap<u32, u64> = BTreeMap::new();
    for &id in ids {
        *freq.entry(id).or_insert(0) += 1;
    }
    freq.into_iter().collect()
}
