//! RV017 fixture, profiler edition: a measurement scope reading the host
//! clock directly instead of routing through `recsim_prof::clock`. Under
//! any non-exempt path (including the rest of crates/prof) this must trip
//! RV017 and nothing else; under `crates/prof/src/clock.rs` — the one
//! sanctioned profiler clock module — it is exempt.

pub struct Scope {
    start: std::time::Instant,
}

pub fn open() -> Scope {
    Scope {
        start: std::time::Instant::now(),
    }
}

pub fn close(scope: Scope) -> u64 {
    scope.start.elapsed().as_nanos() as u64
}
