//! Clean twin of `rv018_bad.rs`: the closure is a pure function of its
//! point; any accumulation happens in the serial fold afterwards.

pub fn run(points: &[u32]) -> (Vec<u32>, u64) {
    let doubled = recsim_pool::par_map(points, |&p| p * 2);
    let total = doubled.iter().map(|&v| u64::from(v)).fold(0u64, u64::wrapping_add);
    (doubled, total)
}
