//! Fixture tests for the determinism lints (RV015–RV018).
//!
//! Each `tests/fixtures/rv0NN_bad.rs` snippet is crafted to trip exactly
//! one rule, and its `_clean.rs` twin is the minimal compliant rewrite of
//! the same code — together they pin both the detection and the escape
//! hatch of every rule. Fixtures are checked through the same entry points
//! `lint::run` uses, under a non-exempt synthetic path.

use recsim_verify::lint::{collections, entropy, reductions, sweep_purity};
use recsim_verify::{Code, Diagnostic};

/// The synthetic library path fixtures are checked under — inside a
/// result-producing crate, exempt from nothing.
const FIXTURE_PATH: &str = "crates/sim/src/fixture.rs";

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Runs all four determinism lints over one snippet, RV015 with an empty
/// budget.
fn all_checks(content: &str) -> Vec<Diagnostic> {
    let mut diags = collections::check_unordered_collections(FIXTURE_PATH, content, 0);
    diags.extend(reductions::check_float_reductions(FIXTURE_PATH, content));
    diags.extend(entropy::check_entropy_sources(FIXTURE_PATH, content));
    diags.extend(sweep_purity::check_sweep_purity(FIXTURE_PATH, content));
    diags
}

/// Asserts the bad fixture trips only `expected` and its clean twin trips
/// nothing.
fn assert_pair(rule: &str, expected: Code) {
    let bad = all_checks(&fixture(&format!("{rule}_bad.rs")));
    assert!(
        !bad.is_empty(),
        "{rule}_bad.rs should produce at least one finding"
    );
    for d in &bad {
        assert_eq!(
            d.code(),
            expected,
            "{rule}_bad.rs tripped an unexpected rule: {d}"
        );
    }
    let clean = all_checks(&fixture(&format!("{rule}_clean.rs")));
    assert!(
        clean.is_empty(),
        "{rule}_clean.rs should be lint-free, got: {:?}",
        clean.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
}

#[test]
fn rv015_unordered_collection() {
    assert_pair("rv015", Code::UnorderedCollection);
}

#[test]
fn rv016_unannotated_float_reduction() {
    assert_pair("rv016", Code::UnannotatedFloatReduction);
}

#[test]
fn rv017_entropy_in_result_path() {
    assert_pair("rv017", Code::EntropyInResultPath);
}

#[test]
fn rv018_impure_sweep_closure() {
    assert_pair("rv018", Code::ImpureSweepClosure);
}

#[test]
fn rv017_profiler_scope_pair() {
    // A profiler measurement scope reading the host clock directly trips
    // RV017 anywhere outside the sanctioned clock module; the clean twin
    // plumbs externally-measured offsets and passes everywhere.
    assert_pair("rv017_prof", Code::EntropyInResultPath);
}

#[test]
fn exemptions_hold_where_nondeterminism_is_the_point() {
    // The pool's own internals legitimately use hash maps and locks.
    let bad15 = fixture("rv015_bad.rs");
    assert!(
        collections::check_unordered_collections("crates/pool/src/lib.rs", &bad15, 0).is_empty()
    );
    let bad18 = fixture("rv018_bad.rs");
    assert!(sweep_purity::check_sweep_purity("crates/pool/src/lib.rs", &bad18).is_empty());
    // Benchmark timing is the one sanctioned wall-clock reader.
    let bad17 = fixture("rv017_bad.rs");
    assert!(entropy::check_entropy_sources("crates/bench/src/timing.rs", &bad17).is_empty());
    // …and the profiler's clock module is the one sanctioned *library*
    // reader: the same direct-read scope is exempt there, but not in any
    // other prof source.
    let bad17p = fixture("rv017_prof_bad.rs");
    assert!(entropy::check_entropy_sources("crates/prof/src/clock.rs", &bad17p).is_empty());
    assert!(!entropy::check_entropy_sources("crates/prof/src/record.rs", &bad17p).is_empty());
}
