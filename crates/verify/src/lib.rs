//! Static analysis and structured validation for the recsim workspace.
//!
//! Two layers share one diagnostic vocabulary:
//!
//! * **Layer 1 — source lints** ([`lint`]): a self-contained, offline,
//!   dependency-free line/token scanner that walks the workspace and
//!   enforces source-level invariants (`#![forbid(unsafe_code)]`
//!   everywhere, no panicking calls in library code, documented and
//!   ablatable [`CostKnobs`] fields, experiment-registry completeness, and
//!   the DESIGN.md crate-layering DAG). Run it with
//!   `cargo run -p recsim-verify -- lint`.
//! * **Layer 2 — semantic validation** (this module): the [`Diagnostic`]
//!   type with stable `RV0xx` [`Code`]s plus the [`Validate`] trait, which
//!   the domain crates (`recsim-hw`, `recsim-placement`, `recsim-sim`,
//!   `recsim-data`) implement for their configuration types. Simulation
//!   entry points call [`Validate::check`] before running, so an invalid
//!   platform, placement, cost model or task graph is reported as a typed
//!   error instead of a panic deep inside the engine.
//!
//! `CostKnobs` lives in `recsim-sim`; this crate sits *below* every other
//! workspace crate precisely so that all of them can implement [`Validate`]
//! without dependency cycles. `recsim-core` re-exports the whole API as
//! `recsim_core::verify`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;

use std::error::Error;
use std::fmt;

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not invalid; never fails a build or a simulation.
    Warning,
    /// A violated invariant; fails `recsim-verify -- lint` and
    /// [`Validate::check`].
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes. `RV001`–`RV019` are source lints (Layer 1);
/// `RV020`+ are semantic validation findings (Layer 2).
///
/// Codes are append-only: a code's meaning never changes once released, so
/// allowlists, CI greps and documentation stay valid across versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Code {
    /// A library crate root is missing `#![forbid(unsafe_code)]`.
    MissingForbidUnsafe,
    /// `unwrap()`/`expect()`/`panic!` in non-test library code beyond the
    /// allowlisted budget.
    PanicInLibrary,
    /// A `pub` field of `sim::CostKnobs` has no doc comment.
    KnobMissingDoc,
    /// A `pub` field of `sim::CostKnobs` is not set in `Default`.
    KnobMissingDefault,
    /// A `pub` field of `sim::CostKnobs` is referenced by no ablation bench
    /// or sweep.
    KnobUnreferenced,
    /// A `fig*`/`table*` bench binary has no matching `core::experiments`
    /// module.
    ExperimentMissingModule,
    /// A `fig*`/`table*` bench binary has no EXPERIMENTS.md row.
    ExperimentMissingDocRow,
    /// A crate manifest depends on a workspace crate outside its allowed
    /// layer (the DESIGN.md DAG).
    LayeringViolation,
    /// A crate manifest pulls in an external crate outside the allowed set.
    ForeignDependency,
    /// An allowlist budget exceeds the actual count — ratchet it down.
    StaleAllowlist,
    /// A simulator builds a task without a `TaskCategory` (raw `add_task`
    /// in non-test sim code, invisible to critical-path attribution).
    UncategorizedTask,
    /// Library code spawns raw threads (`thread::spawn`/`thread::scope`)
    /// outside `crates/pool`, bypassing the deterministic sweep pool.
    RawThreading,
    /// A crate under `crates/` is missing from the DESIGN.md workspace
    /// inventory (§2) or has no layer in the dependency DAG.
    CrateUndocumented,
    /// A `BENCH_*.json` artifact at the repo root does not match the
    /// recsim-bench schema or names no existing bench binary (stale or
    /// renamed baseline).
    StaleBenchArtifact,
    /// Library code uses a hash-ordered collection (`HashMap`/`HashSet`)
    /// whose iteration order is nondeterministic; result-producing crates
    /// must use `BTreeMap`/`BTreeSet` or sort before iterating.
    UnorderedCollection,
    /// A floating-point reduction in a file that touches the parallel pool
    /// has no `// detsan: reduction-order` annotation documenting the
    /// chosen (deterministic) accumulation order.
    UnannotatedFloatReduction,
    /// A wall-clock or entropy source (`SystemTime`, `Instant::now`,
    /// thread-local RNG seeding) in result-producing library code; results
    /// must be pure functions of their inputs.
    EntropyInResultPath,
    /// A `par_map`/`sweep` call site's argument list touches shared mutable
    /// state (locks, cells, atomics) — parallel closures must stay pure and
    /// feed a serial submission-order fold.
    ImpureSweepClosure,
    /// An operator in the recsim-prof op inventory has no profiler
    /// instrumentation point in the model/train sources — every hot-path
    /// kernel must be measurable.
    UninstrumentedOp,
    /// A `hw::Platform` violates its structural invariants.
    InvalidPlatform,
    /// A placement routes more table bytes to a memory than it can hold.
    PlacementOverCapacity,
    /// A placement references a device or server that does not exist.
    DanglingResource,
    /// A placement's shape is degenerate (duplicate tables, empty, …).
    InvalidPlacement,
    /// A cost-model knob or simulator parameter is outside its valid range.
    InvalidCostKnob,
    /// A task is bound to an unknown resource id.
    UnknownTaskResource,
    /// The task graph has a dependency cycle or a forward/dangling
    /// dependency edge.
    DependencyCycle,
    /// A task-graph resource has zero capacity.
    ZeroCapacityResource,
    /// A `data::ModelConfig` violates its structural invariants.
    InvalidModelConfig,
    /// A fleet/cluster configuration (server counts, workflow sample,
    /// CPU-cluster setup) is invalid.
    InvalidClusterConfig,
    /// A simulation report's iteration time is zero or negative.
    NonPositiveIterationTime,
    /// A simulation report's examples-per-iteration is zero or negative.
    NonPositiveExampleCount,
    /// A fault-injection configuration (seed/MTBF/horizon/slowdown factors)
    /// is outside its valid range.
    InvalidFaultConfig,
}

impl Code {
    /// Every code, in numeric order (drives the `codes` subcommand and the
    /// DESIGN.md table test).
    pub const ALL: [Code; 32] = [
        Code::MissingForbidUnsafe,
        Code::PanicInLibrary,
        Code::KnobMissingDoc,
        Code::KnobMissingDefault,
        Code::KnobUnreferenced,
        Code::ExperimentMissingModule,
        Code::ExperimentMissingDocRow,
        Code::LayeringViolation,
        Code::ForeignDependency,
        Code::StaleAllowlist,
        Code::UncategorizedTask,
        Code::RawThreading,
        Code::CrateUndocumented,
        Code::StaleBenchArtifact,
        Code::UnorderedCollection,
        Code::UnannotatedFloatReduction,
        Code::EntropyInResultPath,
        Code::ImpureSweepClosure,
        Code::UninstrumentedOp,
        Code::InvalidPlatform,
        Code::PlacementOverCapacity,
        Code::DanglingResource,
        Code::InvalidPlacement,
        Code::InvalidCostKnob,
        Code::UnknownTaskResource,
        Code::DependencyCycle,
        Code::ZeroCapacityResource,
        Code::InvalidModelConfig,
        Code::InvalidClusterConfig,
        Code::NonPositiveIterationTime,
        Code::NonPositiveExampleCount,
        Code::InvalidFaultConfig,
    ];

    /// The stable `RV0xx` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::MissingForbidUnsafe => "RV001",
            Code::PanicInLibrary => "RV002",
            Code::KnobMissingDoc => "RV003",
            Code::KnobMissingDefault => "RV004",
            Code::KnobUnreferenced => "RV005",
            Code::ExperimentMissingModule => "RV006",
            Code::ExperimentMissingDocRow => "RV007",
            Code::LayeringViolation => "RV008",
            Code::ForeignDependency => "RV009",
            Code::StaleAllowlist => "RV010",
            Code::UncategorizedTask => "RV011",
            Code::RawThreading => "RV012",
            Code::CrateUndocumented => "RV013",
            Code::StaleBenchArtifact => "RV014",
            Code::UnorderedCollection => "RV015",
            Code::UnannotatedFloatReduction => "RV016",
            Code::EntropyInResultPath => "RV017",
            Code::ImpureSweepClosure => "RV018",
            Code::UninstrumentedOp => "RV019",
            Code::InvalidPlatform => "RV020",
            Code::PlacementOverCapacity => "RV021",
            Code::DanglingResource => "RV022",
            Code::InvalidPlacement => "RV023",
            Code::InvalidCostKnob => "RV024",
            Code::UnknownTaskResource => "RV025",
            Code::DependencyCycle => "RV026",
            Code::ZeroCapacityResource => "RV027",
            Code::InvalidModelConfig => "RV028",
            Code::InvalidClusterConfig => "RV029",
            Code::NonPositiveIterationTime => "RV030",
            Code::NonPositiveExampleCount => "RV031",
            Code::InvalidFaultConfig => "RV032",
        }
    }

    /// One-line description (drives the `codes` subcommand).
    pub fn describe(self) -> &'static str {
        match self {
            Code::MissingForbidUnsafe => {
                "library crate root missing #![forbid(unsafe_code)]"
            }
            Code::PanicInLibrary => {
                "panicking call (unwrap/expect/panicking macro) in non-test library code over budget"
            }
            Code::KnobMissingDoc => "CostKnobs field without a doc comment",
            Code::KnobMissingDefault => "CostKnobs field not set in Default",
            Code::KnobUnreferenced => {
                "CostKnobs field referenced by no ablation bench or sweep"
            }
            Code::ExperimentMissingModule => {
                "fig*/table* bench binary without a core::experiments module"
            }
            Code::ExperimentMissingDocRow => {
                "fig*/table* bench binary without an EXPERIMENTS.md row"
            }
            Code::LayeringViolation => {
                "crate dependency violates the DESIGN.md layering DAG"
            }
            Code::ForeignDependency => "external dependency outside the allowed set",
            Code::StaleAllowlist => "allowlist budget above the actual count",
            Code::UncategorizedTask => {
                "simulator schedules a task without a TaskCategory (raw add_task)"
            }
            Code::RawThreading => {
                "raw thread::spawn/scope in library code outside recsim-pool"
            }
            Code::CrateUndocumented => {
                "crate missing from the DESIGN.md workspace inventory or layering DAG"
            }
            Code::StaleBenchArtifact => {
                "BENCH_*.json artifact off-schema or naming no existing bench binary"
            }
            Code::UnorderedCollection => {
                "hash-ordered collection in result-producing library code (use an ordered one)"
            }
            Code::UnannotatedFloatReduction => {
                "float reduction near the parallel pool without a reduction-order annotation"
            }
            Code::EntropyInResultPath => {
                "wall-clock or entropy source in result-producing library code"
            }
            Code::ImpureSweepClosure => {
                "parallel sweep closure touches shared mutable state instead of a serial fold"
            }
            Code::UninstrumentedOp => {
                "profiler op inventory entry has no instrumentation point in model/train"
            }
            Code::InvalidPlatform => "platform violates structural invariants",
            Code::PlacementOverCapacity => "placement exceeds a memory's capacity",
            Code::DanglingResource => "placement references a nonexistent device",
            Code::InvalidPlacement => "placement shape is degenerate",
            Code::InvalidCostKnob => "cost knob or simulator parameter out of range",
            Code::UnknownTaskResource => "task bound to an unknown resource",
            Code::DependencyCycle => "task graph has a cycle or dangling dependency",
            Code::ZeroCapacityResource => "task-graph resource has zero capacity",
            Code::InvalidModelConfig => "model configuration is invalid",
            Code::InvalidClusterConfig => "fleet/cluster configuration is invalid",
            Code::NonPositiveIterationTime => "simulation report iteration time not positive",
            Code::NonPositiveExampleCount => "simulation report example count not positive",
            Code::InvalidFaultConfig => "fault-injection configuration out of range",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a stable code, a severity, where it is, and what is wrong.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Diagnostic {
    code: Code,
    severity: Severity,
    location: String,
    message: String,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    pub fn error(code: Code, location: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
        }
    }

    /// Creates a warning-severity diagnostic.
    pub fn warning(code: Code, location: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: Severity::Warning,
            location: location.into(),
            message: message.into(),
        }
    }

    /// The stable code.
    pub fn code(&self) -> Code {
        self.code
    }

    /// Error or warning.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// Where the finding is (a `path:line` for lints; a config path like
    /// `Platform(Big Basin).gpus[3]` for semantic validation).
    pub fn location(&self) -> &str {
        &self.location
    }

    /// What is wrong.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.code, self.severity, self.location, self.message
        )
    }
}

impl Error for Diagnostic {}

/// The error-severity findings of a failed [`Validate::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    diagnostics: Vec<Diagnostic>,
}

impl ValidationError {
    /// Wraps a non-empty set of diagnostics.
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        Self { diagnostics }
    }

    /// The findings.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Whether any finding carries the given code.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code() == code)
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} validation error(s)", self.diagnostics.len())?;
        for d in &self.diagnostics {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

impl Error for ValidationError {}

impl From<Diagnostic> for ValidationError {
    fn from(d: Diagnostic) -> Self {
        Self::new(vec![d])
    }
}

/// Structural self-validation for configuration types.
///
/// Implementations return *every* finding (warnings included); [`check`]
/// filters to error severity and converts to a `Result`, which is what the
/// simulation entry points call before running.
///
/// [`check`]: Validate::check
pub trait Validate {
    /// All findings, warnings included. Empty means fully valid.
    fn validate(&self) -> Vec<Diagnostic>;

    /// `Err` with the error-severity findings, `Ok(())` when none.
    fn check(&self) -> Result<(), ValidationError> {
        let errors: Vec<Diagnostic> = self
            .validate()
            .into_iter()
            .filter(|d| d.severity() == Severity::Error)
            .collect();
        if errors.is_empty() {
            Ok(())
        } else {
            Err(ValidationError::new(errors))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for code in Code::ALL {
            let s = code.as_str();
            assert!(s.starts_with("RV") && s.len() == 5, "{s}");
            assert!(seen.insert(s), "duplicate code {s}");
            assert!(!code.describe().is_empty());
        }
        assert_eq!(Code::MissingForbidUnsafe.as_str(), "RV001");
        assert_eq!(Code::PanicInLibrary.as_str(), "RV002");
        assert_eq!(Code::UncategorizedTask.as_str(), "RV011");
        assert_eq!(Code::RawThreading.as_str(), "RV012");
        assert_eq!(Code::CrateUndocumented.as_str(), "RV013");
        assert_eq!(Code::StaleBenchArtifact.as_str(), "RV014");
        assert_eq!(Code::UnorderedCollection.as_str(), "RV015");
        assert_eq!(Code::UnannotatedFloatReduction.as_str(), "RV016");
        assert_eq!(Code::EntropyInResultPath.as_str(), "RV017");
        assert_eq!(Code::ImpureSweepClosure.as_str(), "RV018");
        assert_eq!(Code::UninstrumentedOp.as_str(), "RV019");
        assert_eq!(Code::DependencyCycle.as_str(), "RV026");
        assert_eq!(Code::NonPositiveIterationTime.as_str(), "RV030");
        assert_eq!(Code::NonPositiveExampleCount.as_str(), "RV031");
        assert_eq!(Code::InvalidFaultConfig.as_str(), "RV032");
    }

    #[test]
    fn check_filters_warnings() {
        struct Fixture(Vec<Diagnostic>);
        impl Validate for Fixture {
            fn validate(&self) -> Vec<Diagnostic> {
                self.0.clone()
            }
        }
        let warn_only = Fixture(vec![Diagnostic::warning(Code::StaleAllowlist, "here", "m")]);
        assert!(warn_only.check().is_ok());
        let with_error = Fixture(vec![
            Diagnostic::warning(Code::StaleAllowlist, "here", "m"),
            Diagnostic::error(Code::InvalidPlatform, "there", "bad"),
        ]);
        let err = with_error.check().expect_err("has an error");
        assert_eq!(err.diagnostics().len(), 1);
        assert!(err.has_code(Code::InvalidPlatform));
        assert!(!err.has_code(Code::StaleAllowlist));
    }

    #[test]
    fn diagnostic_display_includes_code_and_location() {
        let d = Diagnostic::error(Code::PlacementOverCapacity, "GPU 3", "needs 40 GiB");
        let s = d.to_string();
        assert!(s.contains("RV021") && s.contains("GPU 3") && s.contains("40 GiB"));
    }
}
