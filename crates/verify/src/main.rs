//! `recsim-verify` — the workspace lint driver (Layer 1).
//!
//! ```text
//! cargo run --release -p recsim-verify -- lint               # run all lints
//! cargo run -p recsim-verify -- lint --format json           # machine-readable findings
//! cargo run -p recsim-verify -- lint --write-allowlist       # retighten RV002/RV015 budgets
//! cargo run -p recsim-verify -- codes                        # print the RV0xx table
//! ```
//!
//! Exits non-zero when any error-severity finding is produced, so it can
//! gate CI: `cargo build --release && cargo test -q &&
//! cargo run --release -p recsim-verify -- lint`.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use recsim_verify::lint;
use recsim_verify::{Code, Diagnostic, Severity};

/// How `lint` renders its findings.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    /// The default one-line-per-finding text, plus a summary line.
    Text,
    /// A JSON array of `{rule, severity, file, line, message}` objects on
    /// stdout and nothing else — for editors and CI annotators.
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let format = match args.iter().position(|a| a == "--format") {
                None => Format::Text,
                Some(i) => match args.get(i + 1).map(String::as_str) {
                    Some("json") => Format::Json,
                    Some("text") => Format::Text,
                    other => {
                        eprintln!(
                            "--format expects `text` or `json`, got `{}`",
                            other.unwrap_or("")
                        );
                        return ExitCode::FAILURE;
                    }
                },
            };
            cmd_lint(args.iter().any(|a| a == "--write-allowlist"), format)
        }
        Some("codes") => {
            cmd_codes();
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn cmd_lint(write_allowlist: bool, format: Format) -> ExitCode {
    let Some(root) = lint::workspace_root() else {
        eprintln!("error: could not locate the workspace root (no Cargo.toml with [workspace])");
        return ExitCode::FAILURE;
    };
    if write_allowlist {
        match lint::write_allowlist(&root) {
            Ok(files) => {
                if format == Format::Text {
                    println!(
                        "wrote {} and {} ({files} file(s) with a non-zero budget)",
                        lint::ALLOWLIST_PATH,
                        lint::DETSAN_ALLOWLIST_PATH
                    );
                }
            }
            Err(e) => {
                eprintln!("error: failed to write {}: {e}", lint::ALLOWLIST_PATH);
                return ExitCode::FAILURE;
            }
        }
    }
    let diags = lint::run(&root);
    let errors = diags
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count();
    match format {
        Format::Text => {
            let warnings = diags.len() - errors;
            for d in &diags {
                println!("{d}");
            }
            println!(
                "recsim-verify lint: {errors} error(s), {warnings} warning(s) \
                 across workspace at {}",
                root.display()
            );
        }
        Format::Json => println!("{}", render_json(&diags)),
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders findings as a JSON array without a serializer dependency: every
/// emitted string passes through [`escape_json`], and the schema is flat —
/// `rule`, `severity`, `file`, `line` (0 when the location has no line
/// part, e.g. a whole-crate finding), `message`.
fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (file, line) = split_location(d.location());
        out.push_str(&format!(
            "\n  {{\"rule\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \
             \"line\": {line}, \"message\": \"{}\"}}",
            escape_json(&d.code().to_string()),
            match d.severity() {
                Severity::Error => "error",
                Severity::Warning => "warning",
            },
            escape_json(file),
            escape_json(d.message())
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Splits a `path:line` lint location into its parts. Semantic-validation
/// locations (`Platform(bb).gpus[3]`) and whole-file locations have no
/// trailing line number; those come back verbatim with line 0.
fn split_location(location: &str) -> (&str, usize) {
    match location.rsplit_once(':') {
        Some((file, line)) => match line.parse::<usize>() {
            Ok(n) => (file, n),
            Err(_) => (location, 0),
        },
        None => (location, 0),
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn cmd_codes() {
    println!("code   severity-at-rest  description");
    for code in Code::ALL {
        let layer = if code.as_str() < "RV020" {
            "lint"
        } else {
            "validate"
        };
        println!("{}  {:<8}         {}", code, layer, code.describe());
    }
}

fn print_help() {
    println!(
        "recsim-verify — static analysis for the recsim workspace\n\n\
         USAGE:\n  cargo run --release -p recsim-verify -- <subcommand>\n\n\
         SUBCOMMANDS:\n  \
         lint                    run all workspace lints (RV001-RV018); exits non-zero on errors\n  \
         lint --format json      emit findings as a JSON array (rule, severity, file, line, message)\n  \
         lint --write-allowlist  regenerate the RV002 panic and RV015 collection budgets\n  \
         codes                   print the full RV0xx code table\n  \
         help                    this message\n\n\
         The driver is fully offline: it reads only the checked-out sources."
    );
}
