//! `recsim-verify` — the workspace lint driver (Layer 1).
//!
//! ```text
//! cargo run --release -p recsim-verify -- lint               # run all lints
//! cargo run -p recsim-verify -- lint --write-allowlist       # retighten RV002 budgets
//! cargo run -p recsim-verify -- codes                        # print the RV0xx table
//! ```
//!
//! Exits non-zero when any error-severity finding is produced, so it can
//! gate CI: `cargo build --release && cargo test -q &&
//! cargo run --release -p recsim-verify -- lint`.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use recsim_verify::lint;
use recsim_verify::{Code, Severity};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(args.iter().any(|a| a == "--write-allowlist")),
        Some("codes") => {
            cmd_codes();
            ExitCode::SUCCESS
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n");
            print_help();
            ExitCode::FAILURE
        }
    }
}

fn cmd_lint(write_allowlist: bool) -> ExitCode {
    let Some(root) = lint::workspace_root() else {
        eprintln!("error: could not locate the workspace root (no Cargo.toml with [workspace])");
        return ExitCode::FAILURE;
    };
    if write_allowlist {
        match lint::write_allowlist(&root) {
            Ok(files) => {
                println!(
                    "wrote {} ({files} file(s) with a non-zero budget)",
                    lint::ALLOWLIST_PATH
                );
            }
            Err(e) => {
                eprintln!("error: failed to write {}: {e}", lint::ALLOWLIST_PATH);
                return ExitCode::FAILURE;
            }
        }
    }
    let diags = lint::run(&root);
    let errors = diags
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    for d in &diags {
        println!("{d}");
    }
    println!(
        "recsim-verify lint: {errors} error(s), {warnings} warning(s) \
         across workspace at {}",
        root.display()
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_codes() {
    println!("code   severity-at-rest  description");
    for code in Code::ALL {
        let layer = if code.as_str() < "RV020" {
            "lint"
        } else {
            "validate"
        };
        println!("{}  {:<8}         {}", code, layer, code.describe());
    }
}

fn print_help() {
    println!(
        "recsim-verify — static analysis for the recsim workspace\n\n\
         USAGE:\n  cargo run --release -p recsim-verify -- <subcommand>\n\n\
         SUBCOMMANDS:\n  \
         lint                    run all workspace lints (RV001-RV010); exits non-zero on errors\n  \
         lint --write-allowlist  regenerate the RV002 panic budget before linting\n  \
         codes                   print the full RV0xx code table\n  \
         help                    this message\n\n\
         The driver is fully offline: it reads only the checked-out sources."
    );
}
