//! Layer 1: the workspace lint driver.
//!
//! Pure rule logic lives in the submodules ([`source`], [`knobs`],
//! [`registry`], [`layering`]) so it can be unit-tested on inline
//! fixtures; this module does the filesystem walking and wires the rules
//! to the real tree. Everything runs offline on the checked-out sources —
//! no network, no external tooling, no proc macros.

pub mod artifacts;
pub mod categories;
pub mod collections;
pub mod entropy;
pub mod instrumentation;
pub mod inventory;
pub mod knobs;
pub mod layering;
pub mod parallelism;
pub mod reductions;
pub mod registry;
pub mod source;
pub mod sweep_purity;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::{Code, Diagnostic};

/// Relative path of the RV002 budget file.
pub const ALLOWLIST_PATH: &str = "crates/verify/panic_allowlist.txt";

/// Relative path of the RV015 budget file (hash-collection sites per file).
pub const DETSAN_ALLOWLIST_PATH: &str = "crates/verify/detsan_allowlist.txt";

/// Locates the workspace root: `$CARGO_MANIFEST_DIR/../..` when run via
/// `cargo run -p recsim-verify`, otherwise the nearest ancestor of the
/// current directory whose `Cargo.toml` declares `[workspace]`.
pub fn workspace_root() -> Option<PathBuf> {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let candidate = Path::new(&manifest).join("../..");
        if is_workspace_root(&candidate) {
            return candidate.canonicalize().ok();
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn is_workspace_root(dir: &Path) -> bool {
    fs::read_to_string(dir.join("Cargo.toml")).is_ok_and(|s| s.contains("[workspace]"))
}

/// Runs every Layer-1 rule over the workspace at `root`.
pub fn run(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let budgets = load_allowlist(root, ALLOWLIST_PATH, &mut diags);
    let detsan_budgets = load_allowlist(root, DETSAN_ALLOWLIST_PATH, &mut diags);

    // RV001 + RV002 + RV012 over library sources; RV011 over simulator
    // sources (des.rs hosts the uncategorized wrappers for generic graphs,
    // so it is exempt — every *simulator builder* must categorize its
    // tasks). RV012 exempts crates/pool/src/, the sanctioned thread host.
    // RV015–RV018 are the determinism-sanitizer rules (DESIGN.md §11).
    for (rel, content) in library_sources(root, &mut diags) {
        if rel.ends_with("src/lib.rs") {
            diags.extend(source::check_forbid_unsafe(&rel, &content));
        }
        let budget = budgets.get(rel.as_str()).copied().unwrap_or(0);
        diags.extend(source::check_panic_budget(&rel, &content, budget));
        if rel.starts_with("crates/sim/src/") && !rel.ends_with("/des.rs") {
            diags.extend(categories::check_task_categories(&rel, &content));
        }
        diags.extend(parallelism::check_raw_threading(&rel, &content));
        let detsan_budget = detsan_budgets.get(rel.as_str()).copied().unwrap_or(0);
        diags.extend(collections::check_unordered_collections(
            &rel,
            &content,
            detsan_budget,
        ));
        diags.extend(reductions::check_float_reductions(&rel, &content));
        diags.extend(entropy::check_entropy_sources(&rel, &content));
        diags.extend(sweep_purity::check_sweep_purity(&rel, &content));
    }
    // Budgets pointing at files that no longer exist are stale too.
    for (list, budgets) in [
        (ALLOWLIST_PATH, &budgets),
        (DETSAN_ALLOWLIST_PATH, &detsan_budgets),
    ] {
        for (path, budget) in budgets {
            if !root.join(path).is_file() {
                diags.push(Diagnostic::warning(
                    Code::StaleAllowlist,
                    list,
                    format!("allowlisted file `{path}` (budget {budget}) does not exist"),
                ));
            }
        }
    }

    // RV003–RV005 over the cost model.
    let cost_rel = "crates/sim/src/cost.rs";
    match fs::read_to_string(root.join(cost_rel)) {
        Ok(cost_src) => {
            diags.extend(knobs::check_knob_declarations(cost_rel, &cost_src));
            let bench_sources = sources_under(root, &["crates/bench/benches", "crates/bench/src"]);
            diags.extend(knobs::check_knob_references(
                cost_rel,
                &cost_src,
                &bench_sources,
            ));
        }
        Err(e) => diags.push(read_error(cost_rel, &e)),
    }

    // RV006 + RV007 over the experiment registry.
    let bin_dir = root.join("crates/bench/src/bin");
    let mut bin_stems: Vec<String> = rs_files(&bin_dir)
        .iter()
        .filter_map(|p| p.file_stem().and_then(|s| s.to_str()).map(String::from))
        .collect();
    bin_stems.sort();
    let mod_rel = "crates/core/src/experiments/mod.rs";
    let modules = match fs::read_to_string(root.join(mod_rel)) {
        Ok(src) => registry::experiment_modules(&src),
        Err(e) => {
            diags.push(read_error(mod_rel, &e));
            Vec::new()
        }
    };
    let experiments_md = fs::read_to_string(root.join("EXPERIMENTS.md")).unwrap_or_default();
    diags.extend(registry::check_registry(
        &bin_stems,
        &modules,
        &experiments_md,
    ));

    // RV019 over the profiler op inventory: every op must be instrumented
    // somewhere in the model/train/serve sources.
    let ops_rel = "crates/prof/src/ops.rs";
    match fs::read_to_string(root.join(ops_rel)) {
        Ok(ops_src) => {
            let instrumented = sources_under(
                root,
                &["crates/model/src", "crates/train/src", "crates/serve/src"],
            );
            diags.extend(instrumentation::check_instrumentation(
                ops_rel,
                &ops_src,
                &instrumented,
            ));
        }
        Err(e) => diags.push(read_error(ops_rel, &e)),
    }

    // RV014 over the repo-root bench baselines.
    let bench_artifacts = root_bench_artifacts(root, &mut diags);
    let bin_sources = sources_under(root, &["crates/bench/src/bin"]);
    diags.extend(artifacts::check_bench_artifacts(
        &bench_artifacts,
        &bin_sources,
    ));

    // RV008 + RV009 over every manifest; RV013 (DESIGN.md inventory + DAG
    // membership) over the crates/ manifests.
    let design_md = fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    for (rel, toml) in manifests(root, &mut diags) {
        diags.extend(layering::check_manifest(&rel, &toml));
        if rel.starts_with("crates/") {
            let package = layering::parse_manifest(&toml).package;
            diags.extend(inventory::check_inventory(&rel, &package, &design_md));
        }
    }

    diags
}

/// Regenerates both budget files from the actual per-file counts, so the
/// budgets are exactly tight (`lint --write-allowlist`). Returns the number
/// of files with a nonzero budget across both lists.
pub fn write_allowlist(root: &Path) -> std::io::Result<usize> {
    let mut ignored = Vec::new();
    let mut panic_lines = vec![
        "# RV002 budget: panicking sites allowed per library file.".to_string(),
        "# Regenerate with `cargo run -p recsim-verify -- lint --write-allowlist`.".to_string(),
        "# The budget only ratchets down: exceeding it is an error, beating it".to_string(),
        "# is an RV010 warning until this file is tightened.".to_string(),
    ];
    let mut detsan_lines = vec![
        "# RV015 budget: hash-ordered collection sites allowed per library file.".to_string(),
        "# Regenerate with `cargo run -p recsim-verify -- lint --write-allowlist`.".to_string(),
        "# The budget only ratchets down: exceeding it is an error, beating it".to_string(),
        "# is an RV010 warning until this file is tightened. The tree ships".to_string(),
        "# clean — think hard before adding an entry here.".to_string(),
    ];
    let mut files = 0;
    for (rel, content) in library_sources(root, &mut ignored) {
        let panics = source::panic_sites(&content).len();
        if panics > 0 {
            panic_lines.push(format!("{rel} {panics}"));
            files += 1;
        }
        if !collections::is_exempt(&rel) {
            let sites = collections::collection_sites(&content).len();
            if sites > 0 {
                detsan_lines.push(format!("{rel} {sites}"));
                files += 1;
            }
        }
    }
    panic_lines.push(String::new());
    detsan_lines.push(String::new());
    fs::write(root.join(ALLOWLIST_PATH), panic_lines.join("\n"))?;
    fs::write(root.join(DETSAN_ALLOWLIST_PATH), detsan_lines.join("\n"))?;
    Ok(files)
}

fn load_allowlist(
    root: &Path,
    list_rel: &str,
    diags: &mut Vec<Diagnostic>,
) -> BTreeMap<String, usize> {
    let mut budgets = BTreeMap::new();
    // No allowlist = zero budget everywhere.
    let Ok(text) = fs::read_to_string(root.join(list_rel)) else {
        return budgets;
    };
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let entry = (
            parts.next(),
            parts.next().and_then(|n| n.parse::<usize>().ok()),
        );
        if let (Some(path), Some(count)) = entry {
            budgets.insert(path.to_string(), count);
        } else {
            diags.push(Diagnostic::error(
                Code::StaleAllowlist,
                format!("{list_rel}:{}", idx + 1),
                format!("malformed allowlist line `{line}` (expected `path count`)"),
            ));
        }
    }
    budgets
}

/// Every non-test library source in the workspace: `crates/*/src/**/*.rs`
/// excluding `src/bin/` and `main.rs`, plus the root facade `src/lib.rs`.
/// Test dirs (`tests/`), benches, and examples are exempt by construction —
/// they are never under `src/`.
fn library_sources(root: &Path, diags: &mut Vec<Diagnostic>) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect()
        })
        .unwrap_or_default();
    crate_dirs.sort();
    let mut files = Vec::new();
    for crate_dir in crate_dirs {
        files.extend(rs_files_excluding_bin(&crate_dir.join("src")));
    }
    files.push(root.join("src/lib.rs"));
    files.sort();
    for path in files {
        let rel = rel_path(root, &path);
        match fs::read_to_string(&path) {
            Ok(content) => out.push((rel, content)),
            Err(e) => diags.push(read_error(&rel, &e)),
        }
    }
    out
}

fn rs_files_excluding_bin(src: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![src.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(rd) = fs::read_dir(&dir) else { continue };
        for entry in rd.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                if path.file_name().is_some_and(|n| n == "bin") {
                    continue;
                }
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs")
                && path.file_name().is_none_or(|n| n != "main.rs")
            {
                out.push(path);
            }
        }
    }
    out
}

fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "rs"))
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

fn sources_under(root: &Path, rel_dirs: &[&str]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for rel_dir in rel_dirs {
        let mut stack = vec![root.join(rel_dir)];
        while let Some(dir) = stack.pop() {
            let Ok(rd) = fs::read_dir(&dir) else { continue };
            for entry in rd.filter_map(Result::ok) {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "rs") {
                    if let Ok(content) = fs::read_to_string(&path) {
                        out.push((rel_path(root, &path), content));
                    }
                }
            }
        }
    }
    out.sort();
    out
}

/// Every `BENCH_*.json` at the workspace root, as `(file name, contents)`.
fn root_bench_artifacts(root: &Path, diags: &mut Vec<Diagnostic>) -> Vec<(String, String)> {
    let mut names: Vec<String> = fs::read_dir(root)
        .map(|rd| {
            rd.filter_map(Result::ok)
                .filter(|e| e.path().is_file())
                .filter_map(|e| e.file_name().to_str().map(String::from))
                .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    let mut out = Vec::new();
    for name in names {
        match fs::read_to_string(root.join(&name)) {
            Ok(content) => out.push((name, content)),
            Err(e) => diags.push(read_error(&name, &e)),
        }
    }
    out
}

/// Root `Cargo.toml` plus every `crates/*/Cargo.toml`.
fn manifests(root: &Path, diags: &mut Vec<Diagnostic>) -> Vec<(String, String)> {
    let mut paths = vec![root.join("Cargo.toml")];
    if let Ok(rd) = fs::read_dir(root.join("crates")) {
        let mut crate_manifests: Vec<PathBuf> = rd
            .filter_map(Result::ok)
            .map(|e| e.path().join("Cargo.toml"))
            .filter(|p| p.is_file())
            .collect();
        crate_manifests.sort();
        paths.extend(crate_manifests);
    }
    let mut out = Vec::new();
    for path in paths {
        let rel = rel_path(root, &path);
        match fs::read_to_string(&path) {
            Ok(toml) => out.push((rel, toml)),
            Err(e) => diags.push(read_error(&rel, &e)),
        }
    }
    out
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn read_error(rel: &str, e: &std::io::Error) -> Diagnostic {
    Diagnostic::error(
        Code::StaleAllowlist,
        rel.to_string(),
        format!("lint driver could not read this file: {e}"),
    )
}
