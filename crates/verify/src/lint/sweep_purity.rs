//! RV018: parallel sweep closures must stay pure and feed a serial fold.
//!
//! `recsim_pool::par_map`/`core::sweep` guarantee submission-order results,
//! so the deterministic pattern is: closures compute independent values, and
//! any cross-item aggregation happens *serially* over the returned `Vec`. A
//! closure that instead accumulates into shared mutable state (a `Mutex`ed
//! collector, atomics, interior mutability) makes the *side-effect order*
//! depend on worker scheduling even when the return values do not. RV018
//! scans the argument extent of every sweep call site for those hazard
//! tokens.
//!
//! The scan is a paren-balanced walk from the call's opening parenthesis
//! (string literals skipped, capped at [`MAX_EXTENT_LINES`] lines), so only
//! code textually inside the call — the closure body included — is audited.

use super::source;
use crate::{Code, Diagnostic};

/// Longest call extent the scanner will walk before giving up. Sweep call
/// sites in this workspace are far smaller; the cap only bounds pathological
/// unbalanced-paren inputs.
const MAX_EXTENT_LINES: usize = 200;

/// The sweep entry points RV018 audits. Assembled at runtime so this file
/// does not flag itself when the scanner runs over the verify crate.
fn sweep_tokens() -> [String; 3] {
    [
        format!("par_{}(", "map"),
        format!("par_map_{}(", "with"),
        format!("swe{}(", "ep"),
    ]
}

/// Shared-mutable-state hazards searched for inside a call extent. These are
/// plain literals: they only matter *inside* a sweep call's parentheses, and
/// no such call site passes them as data.
const HAZARDS: [&str; 8] = [
    "Mutex",
    "RwLock",
    "Atomic",
    "static mut",
    "RefCell",
    "Cell::",
    ".lock()",
    "unsafe ",
];

/// True for files RV018 exempts: the pool crate implements the fan-out (its
/// own internals synchronize by design), and `core::sweep` is the thin
/// audited wrapper that forwards to it.
pub fn is_exempt(path: &str) -> bool {
    path.starts_with("crates/pool/src/") || path == "crates/core/src/sweep.rs"
}

/// Strips string literal contents from a line so quoted text cannot open or
/// close parens or fake a hazard token. Escapes are not interpreted — the
/// workspace style has no `\"` inside sweep call sites.
fn blank_strings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_str = false;
    for c in line.chars() {
        if c == '"' {
            in_str = !in_str;
            out.push(c);
        } else if in_str {
            out.push(' ');
        } else {
            out.push(c);
        }
    }
    out
}

fn paren_delta(line: &str) -> i64 {
    let mut d = 0;
    for c in line.chars() {
        match c {
            '(' => d += 1,
            ')' => d -= 1,
            _ => {}
        }
    }
    d
}

/// RV018 for one library source file.
pub fn check_sweep_purity(path: &str, content: &str) -> Vec<Diagnostic> {
    if is_exempt(path) {
        return Vec::new();
    }
    let stripped = source::non_test_lines(content);
    let tokens = sweep_tokens();
    let mut out = Vec::new();
    for (idx, line) in stripped.iter().enumerate() {
        let Some(tok) = tokens.iter().find(|t| line.contains(t.as_str())) else {
            continue;
        };
        // Walk the call extent: start just after the token's open paren,
        // then paren-balance line by line until the call closes.
        let site = line.find(tok.as_str()).unwrap_or(0);
        let first_rest = blank_strings(&line[site + tok.len()..]);
        let mut depth: i64 = 1 + paren_delta(&first_rest);
        let mut hazard = HAZARDS
            .iter()
            .find(|h| first_rest.contains(*h as &str))
            .copied();
        let mut end = idx;
        while depth > 0 && end + 1 < stripped.len() && end - idx < MAX_EXTENT_LINES {
            end += 1;
            let body = blank_strings(&stripped[end]);
            if hazard.is_none() {
                hazard = HAZARDS.iter().find(|h| body.contains(*h as &str)).copied();
            }
            depth += paren_delta(&body);
        }
        if let Some(h) = hazard {
            out.push(Diagnostic::error(
                Code::ImpureSweepClosure,
                format!("{path}:{}", idx + 1),
                format!(
                    "sweep call site touches shared mutable state (`{h}`) \
                     inside its argument extent; return per-item values and \
                     aggregate with a serial fold over the submission-order \
                     results instead"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_collector_in_closure_is_rv018() {
        let src = "pub fn f(xs: &[u32]) -> Vec<u32> {\n\
                   let acc = std::sync::Mutex::new(Vec::new());\n\
                   recsim_pool::par_map(xs, |&x| {\n\
                       acc.lock().unwrap().push(x);\n\
                       x\n\
                   })\n\
                   }\n";
        let diags = check_sweep_purity("crates/core/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::ImpureSweepClosure);
        assert_eq!(diags[0].location(), "crates/core/src/x.rs:3");
    }

    #[test]
    fn pure_closure_with_serial_fold_passes() {
        let src = "pub fn f(xs: &[u32]) -> u32 {\n\
                   let per_item = recsim_pool::par_map(xs, |&x| x * 2);\n\
                   per_item.iter().copied().fold(0u32, u32::wrapping_add)\n\
                   }\n";
        assert!(check_sweep_purity("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn hazard_outside_call_extent_passes() {
        let src = "static COUNT: std::sync::atomic::AtomicU64 = \
                   std::sync::atomic::AtomicU64::new(0);\n\
                   pub fn f(xs: &[u32]) -> Vec<u32> {\n\
                   recsim_pool::par_map(xs, |&x| x + 1)\n\
                   }\n";
        assert!(check_sweep_purity("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn hazard_in_string_literal_passes() {
        let src = "pub fn f(xs: &[u32]) -> Vec<String> {\n\
                   recsim_pool::par_map(xs, |&x| format!(\"Mutex {x}\"))\n\
                   }\n";
        assert!(check_sweep_purity("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn pool_and_sweep_wrapper_are_exempt() {
        let src = "pub fn par_map(xs: &[u32]) { let m = Mutex::new(par_map_inner(xs)); }\n";
        assert!(check_sweep_purity("crates/pool/src/lib.rs", src).is_empty());
        assert!(check_sweep_purity("crates/core/src/sweep.rs", src).is_empty());
    }
}
