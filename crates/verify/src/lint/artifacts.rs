//! RV014: every `BENCH_*.json` baseline artifact at the repo root must
//! still be backed by the workspace. A bench binary writes its speedup
//! baseline under a stable filename; if that binary is renamed or deleted,
//! the artifact silently rots and CI keeps comparing against a ghost. The
//! rule is structural (the lint engine is dependency-free, so there is no
//! JSON parser here): the artifact must be balanced JSON, carry one of the
//! known schema tags plus every field of that schema, and its filename
//! must appear verbatim in some `crates/bench/src/bin` source — the writer
//! names its own artifact, so a missing mention means the producer is
//! gone.

use crate::{Code, Diagnostic};

/// The schema tag of the sweep speedup baseline (`BENCH_sweeps.json`,
/// documented in `crates/bench/src/lib.rs`).
pub const BENCH_SCHEMA: &str = "recsim-bench-sweeps-v1";

/// The schema tag of the hot-path kernel baseline (`BENCH_kernels.json`,
/// written by the `kernels_baseline` binary).
pub const KERNELS_SCHEMA: &str = "recsim-bench-kernels-v1";

/// The schema tag of the serving-tier baseline (`BENCH_serve.json`,
/// written by the `serve_baseline` binary).
pub const SERVE_SCHEMA: &str = "recsim-bench-serve-v1";

/// The schema tag of the per-row sharding baseline (`BENCH_rowshard.json`,
/// written by the `rowshard_baseline` binary).
pub const ROWSHARD_SCHEMA: &str = "recsim-bench-rowshard-v1";

/// Top-level fields of the `recsim-bench-sweeps-v1` schema besides
/// `schema` itself (which is value-checked, not just presence-checked).
pub const REQUIRED_KEYS: [&str; 7] = [
    "threads",
    "effort",
    "drivers",
    "serial_total_secs",
    "parallel_total_secs",
    "speedup",
    "outputs_identical",
];

/// Top-level fields of the `recsim-bench-kernels-v1` schema besides
/// `schema`.
pub const KERNELS_REQUIRED_KEYS: [&str; 7] = [
    "effort",
    "ops",
    "loop_total_secs",
    "leaf_total_secs",
    "baseline_wall_secs",
    "profiled_wall_secs",
    "outputs_identical",
];

/// Top-level fields of the `recsim-bench-serve-v1` schema besides
/// `schema`.
pub const SERVE_REQUIRED_KEYS: [&str; 7] = [
    "effort",
    "threads",
    "scenarios",
    "serial_wall_secs",
    "parallel_wall_secs",
    "speedup",
    "outputs_identical",
];

/// Top-level fields of the `recsim-bench-rowshard-v1` schema besides
/// `schema`.
pub const ROWSHARD_REQUIRED_KEYS: [&str; 7] = [
    "effort",
    "threads",
    "models",
    "serial_wall_secs",
    "parallel_wall_secs",
    "speedup",
    "outputs_identical",
];

/// The required key set for a recognized schema tag.
fn required_keys_for(tag: &str) -> Option<&'static [&'static str]> {
    match tag {
        BENCH_SCHEMA => Some(&REQUIRED_KEYS),
        KERNELS_SCHEMA => Some(&KERNELS_REQUIRED_KEYS),
        SERVE_SCHEMA => Some(&SERVE_REQUIRED_KEYS),
        ROWSHARD_SCHEMA => Some(&ROWSHARD_REQUIRED_KEYS),
        _ => None,
    }
}

/// RV014 for the repo-root bench artifacts. `artifacts` holds
/// `(file name, contents)` for every `BENCH_*.json`; `bin_sources` holds
/// `(rel path, contents)` for every `crates/bench/src/bin/*.rs`.
pub fn check_bench_artifacts(
    artifacts: &[(String, String)],
    bin_sources: &[(String, String)],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (name, json) in artifacts {
        if !json_is_balanced(json) {
            out.push(Diagnostic::error(
                Code::StaleBenchArtifact,
                name,
                "artifact is not well-formed JSON (unbalanced braces/brackets \
                 or unterminated string)",
            ));
            continue;
        }
        match string_value_of(json, "schema")
            .as_deref()
            .map(|tag| required_keys_for(tag).ok_or_else(|| tag.to_string()))
        {
            Some(Ok(required)) => {
                for &key in required {
                    if !has_key(json, key) {
                        out.push(Diagnostic::error(
                            Code::StaleBenchArtifact,
                            name,
                            format!("required schema field `{key}` is missing"),
                        ));
                    }
                }
            }
            Some(Err(tag)) => out.push(Diagnostic::error(
                Code::StaleBenchArtifact,
                name,
                format!(
                    "schema tag `{tag}` is none of `{BENCH_SCHEMA}`, `{KERNELS_SCHEMA}`, \
                     `{SERVE_SCHEMA}`, or `{ROWSHARD_SCHEMA}`"
                ),
            )),
            None => out.push(Diagnostic::error(
                Code::StaleBenchArtifact,
                name,
                format!(
                    "artifact has no `schema` string field (`{BENCH_SCHEMA}`, \
                     `{KERNELS_SCHEMA}`, `{SERVE_SCHEMA}`, or `{ROWSHARD_SCHEMA}` \
                     expected)"
                ),
            )),
        }
        if !bin_sources
            .iter()
            .any(|(_, src)| src.contains(name.as_str()))
        {
            out.push(Diagnostic::error(
                Code::StaleBenchArtifact,
                name,
                "no bench binary under crates/bench/src/bin names this artifact \
                 — its producer was renamed or removed; delete or regenerate it",
            ));
        }
    }
    out
}

/// Whether `{}`/`[]` nest correctly with strings (and escapes) respected.
fn json_is_balanced(json: &str) -> bool {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_string
}

/// Whether `"key"` appears as an object key (followed by `:`).
fn has_key(json: &str, key: &str) -> bool {
    let needle = format!("\"{key}\"");
    let mut from = 0;
    while let Some(pos) = json[from..].find(&needle) {
        let after = from + pos + needle.len();
        if json[after..].trim_start().starts_with(':') {
            return true;
        }
        from = after;
    }
    false
}

/// The string value of top-level-ish `"key": "value"`, if present.
fn string_value_of(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let mut from = 0;
    while let Some(pos) = json[from..].find(&needle) {
        let after = from + pos + needle.len();
        let rest = json[after..].trim_start();
        if let Some(rest) = rest.strip_prefix(':') {
            let rest = rest.trim_start();
            let mut value = String::new();
            let mut chars = rest.chars();
            if chars.next() == Some('"') {
                let mut escaped = false;
                for c in chars {
                    if escaped {
                        value.push(c);
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        return Some(value);
                    } else {
                        value.push(c);
                    }
                }
            }
            return None;
        }
        from = after;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_doc() -> String {
        format!(
            "{{\"schema\": \"{BENCH_SCHEMA}\", \"threads\": 4, \"effort\": \"quick\", \
             \"drivers\": [{{\"id\": \"fig10\", \"serial_secs\": 0.5}}], \
             \"serial_total_secs\": 0.5, \"parallel_total_secs\": 0.2, \
             \"speedup\": 2.5, \"outputs_identical\": true}}"
        )
    }

    fn producer() -> Vec<(String, String)> {
        vec![(
            "crates/bench/src/bin/all_experiments.rs".to_string(),
            "let path = root.join(\"BENCH_sweeps.json\");".to_string(),
        )]
    }

    #[test]
    fn valid_artifact_with_producer_passes() {
        let artifacts = vec![("BENCH_sweeps.json".to_string(), valid_doc())];
        assert!(check_bench_artifacts(&artifacts, &producer()).is_empty());
    }

    #[test]
    fn orphaned_artifact_is_flagged() {
        let artifacts = vec![("BENCH_ghost.json".to_string(), valid_doc())];
        let diags = check_bench_artifacts(&artifacts, &producer());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::StaleBenchArtifact);
        assert!(diags[0].message().contains("producer"));
    }

    #[test]
    fn wrong_schema_tag_is_flagged() {
        let doc = valid_doc().replace(BENCH_SCHEMA, "recsim-bench-sweeps-v0");
        let artifacts = vec![("BENCH_sweeps.json".to_string(), doc)];
        let diags = check_bench_artifacts(&artifacts, &producer());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message().contains("recsim-bench-sweeps-v0"));
    }

    #[test]
    fn missing_field_is_flagged() {
        let doc = valid_doc().replace("\"speedup\": 2.5, ", "");
        let artifacts = vec![("BENCH_sweeps.json".to_string(), doc)];
        let diags = check_bench_artifacts(&artifacts, &producer());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message().contains("speedup"));
    }

    #[test]
    fn kernels_schema_is_accepted_with_its_own_keys() {
        let doc = format!(
            "{{\"schema\": \"{KERNELS_SCHEMA}\", \"effort\": \"quick\", \
             \"ops\": [{{\"op\": \"linear/fwd\", \"total_secs\": 0.1}}], \
             \"loop_total_secs\": 0.5, \"leaf_total_secs\": 0.4, \
             \"baseline_wall_secs\": 0.6, \"profiled_wall_secs\": 0.7, \
             \"outputs_identical\": true}}"
        );
        let producer = vec![(
            "crates/bench/src/bin/kernels_baseline.rs".to_string(),
            "let path = root.join(\"BENCH_kernels.json\");".to_string(),
        )];
        let artifacts = vec![("BENCH_kernels.json".to_string(), doc.clone())];
        assert!(check_bench_artifacts(&artifacts, &producer).is_empty());

        // Kernels artifacts are checked against *their* key list, not the
        // sweeps one: dropping a kernels key is flagged by name.
        let broken = doc.replace("\"loop_total_secs\": 0.5, ", "");
        let artifacts = vec![("BENCH_kernels.json".to_string(), broken)];
        let diags = check_bench_artifacts(&artifacts, &producer);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message().contains("loop_total_secs"));
    }

    #[test]
    fn serve_schema_is_accepted_with_its_own_keys() {
        let doc = format!(
            "{{\"schema\": \"{SERVE_SCHEMA}\", \"effort\": \"quick\", \"threads\": 4, \
             \"scenarios\": [{{\"id\": \"cache-sweep\", \"p99_ms\": 1.5}}], \
             \"serial_wall_secs\": 0.6, \"parallel_wall_secs\": 0.3, \
             \"speedup\": 2.0, \"outputs_identical\": true}}"
        );
        let producer = vec![(
            "crates/bench/src/bin/serve_baseline.rs".to_string(),
            "let path = root.join(\"BENCH_serve.json\");".to_string(),
        )];
        let artifacts = vec![("BENCH_serve.json".to_string(), doc.clone())];
        assert!(check_bench_artifacts(&artifacts, &producer).is_empty());

        let broken = doc.replace("\"scenarios\"", "\"scenes\"");
        let artifacts = vec![("BENCH_serve.json".to_string(), broken)];
        let diags = check_bench_artifacts(&artifacts, &producer);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message().contains("scenarios"));
    }

    #[test]
    fn rowshard_schema_is_accepted_with_its_own_keys() {
        let doc = format!(
            "{{\"schema\": \"{ROWSHARD_SCHEMA}\", \"effort\": \"quick\", \"threads\": 4, \
             \"models\": [{{\"id\": \"M1\", \"advantage\": 0.4}}], \
             \"serial_wall_secs\": 0.6, \"parallel_wall_secs\": 0.3, \
             \"speedup\": 2.0, \"outputs_identical\": true}}"
        );
        let producer = vec![(
            "crates/bench/src/bin/rowshard_baseline.rs".to_string(),
            "let path = root.join(\"BENCH_rowshard.json\");".to_string(),
        )];
        let artifacts = vec![("BENCH_rowshard.json".to_string(), doc.clone())];
        assert!(check_bench_artifacts(&artifacts, &producer).is_empty());

        let broken = doc.replace("\"models\"", "\"tables\"");
        let artifacts = vec![("BENCH_rowshard.json".to_string(), broken)];
        let diags = check_bench_artifacts(&artifacts, &producer);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message().contains("models"));
    }

    #[test]
    fn unbalanced_json_is_flagged_once() {
        let artifacts = vec![(
            "BENCH_sweeps.json".to_string(),
            "{\"schema\": [}".to_string(),
        )];
        let diags = check_bench_artifacts(&artifacts, &producer());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message().contains("well-formed"));
    }

    #[test]
    fn key_matching_requires_colon() {
        // "schema" appearing only as a *value* must not satisfy the key scan.
        let doc = "{\"note\": \"schema\", \"x\": 1}";
        assert!(!has_key(doc, "schema"));
        assert!(has_key(doc, "note"));
        assert_eq!(string_value_of(doc, "note").as_deref(), Some("schema"));
        assert_eq!(string_value_of(doc, "x"), None);
    }
}
