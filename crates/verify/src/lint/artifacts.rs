//! RV014: every `BENCH_*.json` baseline artifact at the repo root must
//! still be backed by the workspace. A bench binary writes its speedup
//! baseline under a stable filename; if that binary is renamed or deleted,
//! the artifact silently rots and CI keeps comparing against a ghost. The
//! rule is structural (the lint engine is dependency-free, so there is no
//! JSON parser here): the artifact must be balanced JSON, carry the
//! `recsim-bench-sweeps-v1` schema tag plus every schema field, and its
//! filename must appear verbatim in some `crates/bench/src/bin` source —
//! the writer names its own artifact, so a missing mention means the
//! producer is gone.

use crate::{Code, Diagnostic};

/// The schema tag every speedup-baseline artifact must carry (documented in
/// `crates/bench/src/lib.rs`).
pub const BENCH_SCHEMA: &str = "recsim-bench-sweeps-v1";

/// Top-level fields of the `recsim-bench-sweeps-v1` schema besides
/// `schema` itself (which is value-checked, not just presence-checked).
pub const REQUIRED_KEYS: [&str; 7] = [
    "threads",
    "effort",
    "drivers",
    "serial_total_secs",
    "parallel_total_secs",
    "speedup",
    "outputs_identical",
];

/// RV014 for the repo-root bench artifacts. `artifacts` holds
/// `(file name, contents)` for every `BENCH_*.json`; `bin_sources` holds
/// `(rel path, contents)` for every `crates/bench/src/bin/*.rs`.
pub fn check_bench_artifacts(
    artifacts: &[(String, String)],
    bin_sources: &[(String, String)],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (name, json) in artifacts {
        if !json_is_balanced(json) {
            out.push(Diagnostic::error(
                Code::StaleBenchArtifact,
                name,
                "artifact is not well-formed JSON (unbalanced braces/brackets \
                 or unterminated string)",
            ));
            continue;
        }
        match string_value_of(json, "schema") {
            Some(tag) if tag == BENCH_SCHEMA => {}
            Some(tag) => out.push(Diagnostic::error(
                Code::StaleBenchArtifact,
                name,
                format!("schema tag `{tag}` is not `{BENCH_SCHEMA}`"),
            )),
            None => out.push(Diagnostic::error(
                Code::StaleBenchArtifact,
                name,
                format!("artifact has no `schema` string field (`{BENCH_SCHEMA}` expected)"),
            )),
        }
        for key in REQUIRED_KEYS {
            if !has_key(json, key) {
                out.push(Diagnostic::error(
                    Code::StaleBenchArtifact,
                    name,
                    format!("required schema field `{key}` is missing"),
                ));
            }
        }
        if !bin_sources
            .iter()
            .any(|(_, src)| src.contains(name.as_str()))
        {
            out.push(Diagnostic::error(
                Code::StaleBenchArtifact,
                name,
                "no bench binary under crates/bench/src/bin names this artifact \
                 — its producer was renamed or removed; delete or regenerate it",
            ));
        }
    }
    out
}

/// Whether `{}`/`[]` nest correctly with strings (and escapes) respected.
fn json_is_balanced(json: &str) -> bool {
    let mut depth: i64 = 0;
    let mut in_string = false;
    let mut escaped = false;
    for c in json.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    depth == 0 && !in_string
}

/// Whether `"key"` appears as an object key (followed by `:`).
fn has_key(json: &str, key: &str) -> bool {
    let needle = format!("\"{key}\"");
    let mut from = 0;
    while let Some(pos) = json[from..].find(&needle) {
        let after = from + pos + needle.len();
        if json[after..].trim_start().starts_with(':') {
            return true;
        }
        from = after;
    }
    false
}

/// The string value of top-level-ish `"key": "value"`, if present.
fn string_value_of(json: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let mut from = 0;
    while let Some(pos) = json[from..].find(&needle) {
        let after = from + pos + needle.len();
        let rest = json[after..].trim_start();
        if let Some(rest) = rest.strip_prefix(':') {
            let rest = rest.trim_start();
            let mut value = String::new();
            let mut chars = rest.chars();
            if chars.next() == Some('"') {
                let mut escaped = false;
                for c in chars {
                    if escaped {
                        value.push(c);
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        return Some(value);
                    } else {
                        value.push(c);
                    }
                }
            }
            return None;
        }
        from = after;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_doc() -> String {
        format!(
            "{{\"schema\": \"{BENCH_SCHEMA}\", \"threads\": 4, \"effort\": \"quick\", \
             \"drivers\": [{{\"id\": \"fig10\", \"serial_secs\": 0.5}}], \
             \"serial_total_secs\": 0.5, \"parallel_total_secs\": 0.2, \
             \"speedup\": 2.5, \"outputs_identical\": true}}"
        )
    }

    fn producer() -> Vec<(String, String)> {
        vec![(
            "crates/bench/src/bin/all_experiments.rs".to_string(),
            "let path = root.join(\"BENCH_sweeps.json\");".to_string(),
        )]
    }

    #[test]
    fn valid_artifact_with_producer_passes() {
        let artifacts = vec![("BENCH_sweeps.json".to_string(), valid_doc())];
        assert!(check_bench_artifacts(&artifacts, &producer()).is_empty());
    }

    #[test]
    fn orphaned_artifact_is_flagged() {
        let artifacts = vec![("BENCH_ghost.json".to_string(), valid_doc())];
        let diags = check_bench_artifacts(&artifacts, &producer());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::StaleBenchArtifact);
        assert!(diags[0].message().contains("producer"));
    }

    #[test]
    fn wrong_schema_tag_is_flagged() {
        let doc = valid_doc().replace(BENCH_SCHEMA, "recsim-bench-sweeps-v0");
        let artifacts = vec![("BENCH_sweeps.json".to_string(), doc)];
        let diags = check_bench_artifacts(&artifacts, &producer());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message().contains("recsim-bench-sweeps-v0"));
    }

    #[test]
    fn missing_field_is_flagged() {
        let doc = valid_doc().replace("\"speedup\": 2.5, ", "");
        let artifacts = vec![("BENCH_sweeps.json".to_string(), doc)];
        let diags = check_bench_artifacts(&artifacts, &producer());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message().contains("speedup"));
    }

    #[test]
    fn unbalanced_json_is_flagged_once() {
        let artifacts = vec![(
            "BENCH_sweeps.json".to_string(),
            "{\"schema\": [}".to_string(),
        )];
        let diags = check_bench_artifacts(&artifacts, &producer());
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message().contains("well-formed"));
    }

    #[test]
    fn key_matching_requires_colon() {
        // "schema" appearing only as a *value* must not satisfy the key scan.
        let doc = "{\"note\": \"schema\", \"x\": 1}";
        assert!(!has_key(doc, "schema"));
        assert!(has_key(doc, "note"));
        assert_eq!(string_value_of(doc, "note").as_deref(), Some("schema"));
        assert_eq!(string_value_of(doc, "x"), None);
    }
}
