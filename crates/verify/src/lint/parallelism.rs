//! RV012: all parallelism stays behind the `recsim-pool` abstraction.
//!
//! The sweep harness's determinism contract (parallel output byte-identical
//! to serial) holds because every fan-out goes through
//! `recsim_pool::par_map`/`scoped_workers`, which restore submission order
//! and surface worker panics. Raw `std::thread::spawn` / `std::thread::scope`
//! (or crossbeam's scope) in library code would bypass that contract, so
//! this rule flags them everywhere except `crates/pool/src/`, where the one
//! sanctioned implementation lives. Test modules are exempt (the shared
//! token scanner skips `#[cfg(test)]` blocks).

use super::source;
use crate::{Code, Diagnostic};

/// The raw threading entry points RV012 looks for. Assembled at runtime so
/// this file does not flag itself when the scanner runs over the verify
/// crate. Matching on the `thread::` suffix catches `std::thread::*`,
/// `crossbeam::thread::*` and `use std::thread; thread::spawn(…)` alike.
fn raw_thread_tokens() -> [String; 2] {
    [
        format!("thread::{}(", "spawn"),
        format!("thread::{}(", "scope"),
    ]
}

/// True for the files RV012 exempts: the pool crate is the one place the
/// workspace may touch `std::thread` directly.
pub fn is_exempt(path: &str) -> bool {
    path.starts_with("crates/pool/src/")
}

/// RV012 for one library source file.
pub fn check_raw_threading(path: &str, content: &str) -> Vec<Diagnostic> {
    if is_exempt(path) {
        return Vec::new();
    }
    source::token_sites(content, &raw_thread_tokens())
        .into_iter()
        .map(|(line, token)| {
            Diagnostic::error(
                Code::RawThreading,
                format!("{path}:{line}"),
                format!(
                    "`{token}…)` spawns threads outside recsim-pool; route the \
                     fan-out through `recsim_pool::par_map`/`scoped_workers` so \
                     sweep output stays deterministic and panics are surfaced"
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_thread_spawn_is_rv012() {
        let src = "fn fan_out() {\n    let h = std::thread::spawn(|| work());\n    h.join();\n}\n";
        let diags = check_raw_threading("crates/core/src/experiments/fig10.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::RawThreading);
        assert_eq!(
            diags[0].location(),
            "crates/core/src/experiments/fig10.rs:2"
        );
    }

    #[test]
    fn scoped_and_crossbeam_variants_are_rv012_too() {
        let src = "std::thread::scope(|s| { s.spawn(|| ()); });\n\
                   crossbeam::thread::scope(|s| { s.spawn(|_| ()); });\n";
        let diags = check_raw_threading("crates/train/src/parallel.rs", src);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code() == Code::RawThreading));
    }

    #[test]
    fn pool_crate_is_exempt() {
        let src = "std::thread::scope(|s| { s.spawn(|| ()); });\n";
        assert!(check_raw_threading("crates/pool/src/lib.rs", src).is_empty());
        assert!(is_exempt("crates/pool/src/lib.rs"));
        assert!(!is_exempt("crates/train/src/parallel.rs"));
    }

    #[test]
    fn pool_consumers_pass() {
        let src = "let results = recsim_pool::par_map(&configs, run_one);\n\
                   recsim_pool::scoped_workers(4, |w| trainers[w].run());\n";
        assert!(check_raw_threading("crates/core/src/sweep.rs", src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = concat!(
            "fn lib() { recsim_pool::par_map(&xs, f); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { std::thread::spawn(|| ()); }\n",
            "}\n",
        );
        assert!(check_raw_threading("crates/core/src/sweep.rs", src).is_empty());
    }
}
