//! Crate-layering rules (RV008, RV009): each crate's `[dependencies]` must
//! respect the DESIGN.md DAG, and only a fixed set of external crates is
//! allowed (the workspace is offline-first — nothing outside the baked-in
//! set may be pulled in).
//!
//! The DAG, bottom-up:
//!
//! ```text
//! verify ← metrics ← hw ← placement ← sim ← shard ← fault
//!                  ↖ data ← model ← train
//!                  ↖ trace (← sim, for schedule export/attribution)
//! detsan (dependency-free) ← pool/data/sim/train/serve/core/facade
//! prof (dependency-free) ← model/train/serve/core/facade
//! pool (← detsan only) ← train/core/bench/facade
//! serve (← hw/data/model/fault/trace) beside train, under core
//! core atop everything; bench + the root facade atop core.
//! ```

use crate::{Code, Diagnostic};

/// External crates the workspace may depend on (build or dev). Anything
/// else is RV009 — the environment is offline and nothing new gets vendored.
pub const ALLOWED_EXTERNAL: [&str; 7] = [
    "rand",
    "rand_distr",
    "proptest",
    "criterion",
    "parking_lot",
    "serde",
    "serde_json",
];

/// Allowed `[dependencies]` (workspace-internal) per crate — the DESIGN.md
/// DAG. `[dev-dependencies]` are not layered: tests may reach sideways.
pub fn allowed_internal(package: &str) -> Option<&'static [&'static str]> {
    const VERIFY: &[&str] = &[];
    const DETSAN: &[&str] = &[];
    const PROF: &[&str] = &[];
    const POOL: &[&str] = &["recsim-detsan"];
    const METRICS: &[&str] = &["recsim-verify"];
    const HW: &[&str] = &["recsim-verify", "recsim-metrics"];
    const DATA: &[&str] = &["recsim-verify", "recsim-detsan", "recsim-metrics"];
    const MODEL: &[&str] = &[
        "recsim-verify",
        "recsim-prof",
        "recsim-metrics",
        "recsim-data",
    ];
    const PLACEMENT: &[&str] = &[
        "recsim-verify",
        "recsim-metrics",
        "recsim-hw",
        "recsim-data",
    ];
    const TRACE: &[&str] = &["recsim-verify", "recsim-metrics"];
    const SIM: &[&str] = &[
        "recsim-verify",
        "recsim-detsan",
        "recsim-metrics",
        "recsim-hw",
        "recsim-data",
        "recsim-placement",
        "recsim-trace",
    ];
    const SHARD: &[&str] = &[
        "recsim-verify",
        "recsim-detsan",
        "recsim-metrics",
        "recsim-hw",
        "recsim-data",
        "recsim-placement",
        "recsim-sim",
        "recsim-trace",
    ];
    const FAULT: &[&str] = &[
        "recsim-verify",
        "recsim-metrics",
        "recsim-hw",
        "recsim-data",
        "recsim-placement",
        "recsim-sim",
        "recsim-shard",
        "recsim-trace",
    ];
    const TRAIN: &[&str] = &[
        "recsim-verify",
        "recsim-detsan",
        "recsim-prof",
        "recsim-pool",
        "recsim-metrics",
        "recsim-data",
        "recsim-model",
    ];
    const SERVE: &[&str] = &[
        "recsim-detsan",
        "recsim-prof",
        "recsim-metrics",
        "recsim-hw",
        "recsim-data",
        "recsim-model",
        "recsim-fault",
        "recsim-trace",
    ];
    const CORE: &[&str] = &[
        "recsim-verify",
        "recsim-detsan",
        "recsim-prof",
        "recsim-pool",
        "recsim-metrics",
        "recsim-hw",
        "recsim-data",
        "recsim-model",
        "recsim-placement",
        "recsim-sim",
        "recsim-shard",
        "recsim-fault",
        "recsim-trace",
        "recsim-train",
        "recsim-serve",
    ];
    const TOP: &[&str] = &[
        "recsim-verify",
        "recsim-detsan",
        "recsim-prof",
        "recsim-pool",
        "recsim-metrics",
        "recsim-hw",
        "recsim-data",
        "recsim-model",
        "recsim-placement",
        "recsim-sim",
        "recsim-shard",
        "recsim-fault",
        "recsim-trace",
        "recsim-train",
        "recsim-serve",
        "recsim-core",
    ];
    match package {
        "recsim-verify" => Some(VERIFY),
        "recsim-detsan" => Some(DETSAN),
        "recsim-prof" => Some(PROF),
        "recsim-pool" => Some(POOL),
        "recsim-metrics" => Some(METRICS),
        "recsim-hw" => Some(HW),
        "recsim-data" => Some(DATA),
        "recsim-model" => Some(MODEL),
        "recsim-placement" => Some(PLACEMENT),
        "recsim-sim" => Some(SIM),
        "recsim-shard" => Some(SHARD),
        "recsim-fault" => Some(FAULT),
        "recsim-trace" => Some(TRACE),
        "recsim-train" => Some(TRAIN),
        "recsim-serve" => Some(SERVE),
        "recsim-core" => Some(CORE),
        "recsim-bench" | "recsim" => Some(TOP),
        _ => None,
    }
}

/// A parsed crate manifest: just the parts layering cares about.
#[derive(Debug, Default, Clone)]
pub struct ManifestDeps {
    /// `name = "…"` under `[package]`.
    pub package: String,
    /// Keys under `[dependencies]`.
    pub dependencies: Vec<String>,
    /// Keys under `[dev-dependencies]`.
    pub dev_dependencies: Vec<String>,
}

/// Minimal TOML section/key scanner — enough for Cargo manifests written in
/// the workspace's style (one dependency per line; no inline tables
/// spanning sections).
pub fn parse_manifest(toml: &str) -> ManifestDeps {
    #[derive(PartialEq)]
    enum Section {
        Package,
        Dependencies,
        DevDependencies,
        Other,
    }
    let mut section = Section::Other;
    let mut out = ManifestDeps::default();
    for raw in toml.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = match line {
                "[package]" => Section::Package,
                "[dependencies]" => Section::Dependencies,
                "[dev-dependencies]" => Section::DevDependencies,
                _ => Section::Other,
            };
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim();
        match section {
            Section::Package if key == "name" => {
                out.package = line[eq + 1..].trim().trim_matches('"').to_string();
            }
            Section::Dependencies | Section::DevDependencies => {
                // `serde.workspace = true` → key `serde`.
                let name = key.split('.').next().unwrap_or(key).trim().to_string();
                if section == Section::Dependencies {
                    out.dependencies.push(name);
                } else {
                    out.dev_dependencies.push(name);
                }
            }
            _ => {}
        }
    }
    out
}

/// RV008 + RV009 for one crate manifest.
pub fn check_manifest(path: &str, toml: &str) -> Vec<Diagnostic> {
    let deps = parse_manifest(toml);
    let mut out = Vec::new();
    let Some(allowed) = allowed_internal(&deps.package) else {
        out.push(Diagnostic::error(
            Code::LayeringViolation,
            path,
            format!(
                "crate `{}` is not in the DESIGN.md DAG — add it to \
                 crates/verify/src/lint/layering.rs with its allowed layer",
                deps.package
            ),
        ));
        return out;
    };
    for dep in &deps.dependencies {
        if dep.starts_with("recsim") {
            if !allowed.contains(&dep.as_str()) {
                out.push(Diagnostic::error(
                    Code::LayeringViolation,
                    path,
                    format!(
                        "`{}` may not depend on `{dep}`: the DESIGN.md DAG allows only {:?}",
                        deps.package, allowed
                    ),
                ));
            }
        } else if !ALLOWED_EXTERNAL.contains(&dep.as_str()) {
            out.push(Diagnostic::error(
                Code::ForeignDependency,
                path,
                format!(
                    "external dependency `{dep}` is outside the allowed set {ALLOWED_EXTERNAL:?}"
                ),
            ));
        }
    }
    for dep in &deps.dev_dependencies {
        // dev-deps are not layered, but they must still be offline-available.
        if !dep.starts_with("recsim") && !ALLOWED_EXTERNAL.contains(&dep.as_str()) {
            out.push(Diagnostic::error(
                Code::ForeignDependency,
                path,
                format!(
                    "external dev-dependency `{dep}` is outside the allowed set \
                     {ALLOWED_EXTERNAL:?}"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_workspace_style_manifest() {
        let toml = "\
[package]
name = \"recsim-hw\"
version.workspace = true

[dependencies]
serde.workspace = true
recsim-metrics = { path = \"../metrics\" }

[dev-dependencies]
proptest.workspace = true
";
        let m = parse_manifest(toml);
        assert_eq!(m.package, "recsim-hw");
        assert_eq!(m.dependencies, ["serde", "recsim-metrics"]);
        assert_eq!(m.dev_dependencies, ["proptest"]);
    }

    #[test]
    fn clean_manifest_passes() {
        let toml = "[package]\nname = \"recsim-hw\"\n[dependencies]\nserde.workspace = true\n";
        assert!(check_manifest("crates/hw/Cargo.toml", toml).is_empty());
    }

    #[test]
    fn upward_dependency_is_rv008() {
        let toml = "[package]\nname = \"recsim-hw\"\n[dependencies]\nrecsim-sim.workspace = true\n";
        let diags = check_manifest("crates/hw/Cargo.toml", toml);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::LayeringViolation);
        assert!(diags[0].message().contains("recsim-sim"));
    }

    #[test]
    fn foreign_dependency_is_rv009() {
        let toml = "[package]\nname = \"recsim-hw\"\n[dependencies]\nsyn = \"2\"\n";
        let diags = check_manifest("crates/hw/Cargo.toml", toml);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::ForeignDependency);
    }

    #[test]
    fn unknown_crate_is_flagged() {
        let toml = "[package]\nname = \"recsim-extras\"\n[dependencies]\n";
        let diags = check_manifest("crates/extras/Cargo.toml", toml);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::LayeringViolation);
    }
}
