//! RV019: every operator in the recsim-prof op inventory must have a
//! profiler instrumentation point.
//!
//! The profiler is only as honest as its coverage: a kernel that never
//! opens a scope simply vanishes from the per-op breakdown, and the shares
//! still sum to ~100% — the gap is silent. This rule closes the loop: each
//! `Op::Variant` listed in the inventory's `ALL` array must appear at a
//! `prof::scope(...)`-style call site somewhere in the instrumented crates
//! (recsim-model, recsim-train, recsim-serve), so adding an op without wiring it up —
//! or deleting the scope during a refactor — fails the lint, the same
//! coverage-ratchet idea as the panic/detsan allowlists.

use crate::{Code, Diagnostic};

/// Extracts the `Op::Variant` names listed inside the inventory's
/// `pub const ALL` array. Returns an empty list (no findings downstream)
/// when the array cannot be located — RV013 and the build itself guard the
/// inventory file's existence.
pub fn inventory_ops(ops_source: &str) -> Vec<String> {
    let Some(start) = ops_source.find("const ALL") else {
        return Vec::new();
    };
    // Skip the type annotation (`: [Op; N]`) — the entry list is the
    // bracket after the `=`.
    let Some(eq) = ops_source[start..].find('=') else {
        return Vec::new();
    };
    let list = start + eq;
    let Some(open) = ops_source[list..].find('[') else {
        return Vec::new();
    };
    let Some(close) = ops_source[list + open..].find(']') else {
        return Vec::new();
    };
    let body = &ops_source[list + open + 1..list + open + close];
    body.split(',')
        .map(str::trim)
        .filter_map(|entry| entry.strip_prefix("Op::"))
        .map(|name| name.trim().to_string())
        .collect()
}

/// RV019: each inventory op must be named at an instrumentation site in
/// `sources` (the model/train library files, as `(path, content)` pairs).
pub fn check_instrumentation(
    ops_path: &str,
    ops_source: &str,
    sources: &[(String, String)],
) -> Vec<Diagnostic> {
    let ops = inventory_ops(ops_source);
    let mut out = Vec::new();
    for op in &ops {
        let token = format!("Op::{op}");
        let covered = sources.iter().any(|(_, content)| content.contains(&token));
        if !covered {
            out.push(Diagnostic::error(
                Code::UninstrumentedOp,
                ops_path,
                format!(
                    "op inventory entry `{token}` has no instrumentation point in \
                     crates/model, crates/train, or crates/serve — open a \
                     `prof::scope({token}, …)` around the kernel (or remove the op \
                     from the inventory)"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPS: &str = "\
impl Op {
    pub const ALL: [Op; 3] = [
        Op::LinearFwd,
        Op::EmbGather,
        Op::TrainStep,
    ];
}
";

    fn src(content: &str) -> Vec<(String, String)> {
        vec![(
            "crates/model/src/linear.rs".to_string(),
            content.to_string(),
        )]
    }

    #[test]
    fn parses_inventory_list() {
        assert_eq!(inventory_ops(OPS), ["LinearFwd", "EmbGather", "TrainStep"]);
        assert!(inventory_ops("pub enum Op {}").is_empty());
    }

    #[test]
    fn covered_inventory_passes() {
        let sources = src("let _s = prof::scope(Op::LinearFwd, c);\n\
             let _s = prof::scope(Op::EmbGather, c);\n\
             let _s = prof::scope(Op::TrainStep, c);\n");
        assert!(check_instrumentation("crates/prof/src/ops.rs", OPS, &sources).is_empty());
    }

    #[test]
    fn missing_scope_is_rv019() {
        let sources = src("let _s = prof::scope(Op::LinearFwd, c);\n");
        let diags = check_instrumentation("crates/prof/src/ops.rs", OPS, &sources);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code() == Code::UninstrumentedOp));
        assert!(diags[0].message().contains("Op::EmbGather"));
        assert!(diags[1].message().contains("Op::TrainStep"));
    }
}
