//! RV015: no hash-ordered collections in result-producing library code.
//!
//! Iterating a `std::collections` hash map or hash set visits entries in an
//! order that changes from process to process (SipHash is seeded per run),
//! so any result derived from such an iteration silently breaks the
//! workspace's byte-identical determinism contract. Library code must use
//! `BTreeMap`/`BTreeSet` (or collect-and-sort) instead. The budget file
//! `crates/verify/detsan_allowlist.txt` works exactly like the RV002 panic
//! ratchet: exceeding a file's budget is an error, beating it is an RV010
//! stale-allowlist warning. The tree ships with an empty budget.

use super::source;
use crate::{Code, Diagnostic};

/// The hash-collection tokens RV015 looks for. Assembled at runtime so this
/// file does not flag itself when the scanner runs over the verify crate.
/// Matching the bare type name catches declarations, `use` imports,
/// turbofish collects and `with_hasher` constructions alike.
fn collection_tokens() -> [String; 2] {
    [format!("Hash{}", "Map"), format!("Hash{}", "Set")]
}

/// True for files RV015 exempts: the pool crate does not produce results —
/// its internal scheduling state never reaches an artifact.
pub fn is_exempt(path: &str) -> bool {
    path.starts_with("crates/pool/src/")
}

/// The RV015 sites in one file (used by the allowlist writer).
pub fn collection_sites(content: &str) -> Vec<(usize, String)> {
    source::token_sites(content, &collection_tokens())
}

/// RV015 with the per-file budget applied, panic-ratchet style.
pub fn check_unordered_collections(path: &str, content: &str, budget: usize) -> Vec<Diagnostic> {
    if is_exempt(path) {
        return Vec::new();
    }
    let sites = collection_sites(content);
    let actual = sites.len();
    let mut out = Vec::new();
    if actual > budget {
        for (line, token) in &sites {
            out.push(Diagnostic::error(
                Code::UnorderedCollection,
                format!("{path}:{line}"),
                format!(
                    "`{token}` has nondeterministic iteration order; use \
                     BTreeMap/BTreeSet or sort before iterating so results \
                     stay byte-identical across runs ({actual} site(s), \
                     budget {budget} in crates/verify/detsan_allowlist.txt)"
                ),
            ));
        }
    } else if actual < budget {
        out.push(Diagnostic::warning(
            Code::StaleAllowlist,
            path.to_string(),
            format!(
                "detsan allowlist budget is {budget} but only {actual} \
                 hash-collection site(s) remain; ratchet it down"
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_map_in_library_is_rv015() {
        let src = "use std::collections::HashMap;\n\
                   pub fn f() -> Vec<u32> {\n\
                       let m: HashMap<u32, u32> = HashMap::new();\n\
                       m.into_keys().collect()\n\
                   }\n";
        let diags = check_unordered_collections("crates/data/src/trace.rs", src, 0);
        assert_eq!(diags.len(), 3);
        assert!(diags.iter().all(|d| d.code() == Code::UnorderedCollection));
        assert_eq!(diags[0].location(), "crates/data/src/trace.rs:1");
    }

    #[test]
    fn btree_map_passes() {
        let src = "use std::collections::BTreeMap;\n\
                   pub fn f() -> BTreeMap<u32, u32> { BTreeMap::new() }\n";
        assert!(check_unordered_collections("crates/data/src/trace.rs", src, 0).is_empty());
    }

    #[test]
    fn test_modules_and_pool_are_exempt() {
        let test_only = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        assert!(check_unordered_collections("crates/hw/src/platform.rs", test_only, 0).is_empty());
        let in_pool = "use std::collections::HashMap;\n";
        assert!(check_unordered_collections("crates/pool/src/lib.rs", in_pool, 0).is_empty());
    }

    #[test]
    fn budget_over_and_under() {
        let src = "use std::collections::HashSet;\n";
        assert_eq!(
            check_unordered_collections("crates/x/src/a.rs", src, 1).len(),
            0
        );
        let stale = check_unordered_collections("crates/x/src/a.rs", src, 2);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].code(), Code::StaleAllowlist);
    }
}
