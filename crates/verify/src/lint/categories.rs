//! RV011: simulator task graphs must carry task categories.
//!
//! Critical-path attribution (`recsim-trace`) partitions the makespan by
//! `TaskCategory`, which only works if every task a simulator schedules was
//! added through the category-carrying constructors (`add_task_in` /
//! `try_add_task_in`). This rule flags raw `add_task`/`try_add_task` call
//! sites in non-test simulator code; the driver applies it to
//! `crates/sim/src/**` except `des.rs` itself (where the delegating
//! uncategorized wrappers legitimately live for generic graphs).

use super::source;
use crate::{Code, Diagnostic};

/// The uncategorized constructors RV011 looks for. Assembled at runtime so
/// this file does not flag itself when the scanner runs over the verify
/// crate.
fn raw_task_tokens() -> [String; 2] {
    [format!(".add_{}(", "task"), format!(".try_add_{}(", "task")]
}

/// RV011 for one simulator source file: every task must be scheduled with a
/// `TaskCategory`. Note `.add_task_in(` does not match the `.add_task(`
/// token (the next character is `_`, not `(`), so categorized call sites
/// pass untouched.
pub fn check_task_categories(path: &str, content: &str) -> Vec<Diagnostic> {
    source::token_sites(content, &raw_task_tokens())
        .into_iter()
        .map(|(line, token)| {
            Diagnostic::error(
                Code::UncategorizedTask,
                format!("{path}:{line}"),
                format!(
                    "`{token}…)` schedules a task without a TaskCategory; use \
                     `add_task_in`/`try_add_task_in` so critical-path \
                     attribution can classify it"
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_add_task_is_rv011() {
        let src = "fn build(g: &mut TaskGraph) {\n    g.add_task(\"x\", d, None, &[]);\n}\n";
        let diags = check_task_categories("crates/sim/src/gpu.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::UncategorizedTask);
        assert_eq!(diags[0].location(), "crates/sim/src/gpu.rs:2");
    }

    #[test]
    fn try_variant_is_rv011_too() {
        let src = "let id = g.try_add_task(\"x\", d, None, &[]);\n";
        let diags = check_task_categories("crates/sim/src/cpu.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::UncategorizedTask);
    }

    #[test]
    fn categorized_call_sites_pass() {
        let src = "g.add_task_in(TaskCategory::MlpCompute, \"x\", d, None, &[]);\n\
                   g.try_add_task_in(TaskCategory::AllToAll, \"y\", d, None, &[]);\n";
        assert!(check_task_categories("crates/sim/src/gpu.rs", src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = concat!(
            "fn lib(g: &mut TaskGraph) { g.add_task_in(c, \"x\", d, None, &[]); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(g: &mut TaskGraph) { g.add_task(\"x\", d, None, &[]); }\n",
            "}\n",
        );
        assert!(check_task_categories("crates/sim/src/gpu.rs", src).is_empty());
    }
}
