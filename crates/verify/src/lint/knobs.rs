//! Cost-model ablatability rules (RV003–RV005): every `pub` field of
//! `sim::CostKnobs` must carry a doc comment, appear in the `Default`
//! impl, and be referenced by at least one ablation bench or sweep —
//! otherwise the knob is dead weight nobody can interpret or ablate
//! (DESIGN §5).

use crate::{Code, Diagnostic};

/// A `pub` field of `CostKnobs` as seen by the scanner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnobField {
    /// Field name.
    pub name: String,
    /// 1-based line of the declaration.
    pub line: usize,
    /// Whether a `///` doc comment immediately precedes it.
    pub documented: bool,
}

/// Extracts the `pub` fields of `pub struct CostKnobs { … }`.
pub fn knob_fields(cost_src: &str) -> Vec<KnobField> {
    let mut fields = Vec::new();
    let mut in_struct = false;
    let mut depth: i64 = 0;
    let mut has_doc = false;
    for (idx, raw) in cost_src.lines().enumerate() {
        let trimmed = raw.trim_start();
        if !in_struct {
            if trimmed.starts_with("pub struct CostKnobs") {
                in_struct = true;
                depth = brace_delta(raw);
            }
            continue;
        }
        if depth == 1 {
            if trimmed.starts_with("///") {
                has_doc = true;
            } else if trimmed.starts_with("pub ") && trimmed.contains(':') {
                let name = trimmed
                    .trim_start_matches("pub ")
                    .split(':')
                    .next()
                    .unwrap_or("")
                    .trim()
                    .to_string();
                if !name.is_empty() {
                    fields.push(KnobField {
                        name,
                        line: idx + 1,
                        documented: has_doc,
                    });
                }
                has_doc = false;
            } else if !trimmed.starts_with("#[") && !trimmed.is_empty() {
                has_doc = false;
            }
        }
        depth += brace_delta(raw);
        if depth <= 0 {
            break;
        }
    }
    fields
}

/// Extracts the field names assigned in `impl Default for CostKnobs`.
pub fn default_fields(cost_src: &str) -> Vec<String> {
    let mut names = Vec::new();
    let mut in_impl = false;
    let mut depth: i64 = 0;
    for raw in cost_src.lines() {
        let trimmed = raw.trim_start();
        if !in_impl {
            if trimmed.starts_with("impl Default for CostKnobs") {
                in_impl = true;
                depth = brace_delta(raw);
            }
            continue;
        }
        // Field initializers live at depth ≥ 3 (impl { fn { Self { … } } }),
        // but matching `ident:` anywhere inside the impl is sufficient.
        if let Some(colon) = trimmed.find(':') {
            let candidate = &trimmed[..colon];
            if !candidate.is_empty()
                && candidate
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            {
                names.push(candidate.to_string());
            }
        }
        depth += brace_delta(raw);
        if depth <= 0 {
            break;
        }
    }
    names
}

/// RV003 + RV004 over the contents of `crates/sim/src/cost.rs`.
pub fn check_knob_declarations(path: &str, cost_src: &str) -> Vec<Diagnostic> {
    let fields = knob_fields(cost_src);
    let defaults = default_fields(cost_src);
    let mut out = Vec::new();
    if fields.is_empty() {
        out.push(Diagnostic::error(
            Code::KnobMissingDoc,
            path,
            "could not find any pub fields in `pub struct CostKnobs` — \
             has the struct moved? update crates/verify/src/lint/knobs.rs",
        ));
        return out;
    }
    for f in &fields {
        if !f.documented {
            out.push(Diagnostic::error(
                Code::KnobMissingDoc,
                format!("{path}:{}", f.line),
                format!("CostKnobs field `{}` has no /// doc comment", f.name),
            ));
        }
        if !defaults.iter().any(|d| d == &f.name) {
            out.push(Diagnostic::error(
                Code::KnobMissingDefault,
                format!("{path}:{}", f.line),
                format!(
                    "CostKnobs field `{}` is not assigned in `impl Default for CostKnobs`",
                    f.name
                ),
            ));
        }
    }
    out
}

/// RV005: every knob must be referenced (by field name) in at least one
/// bench source — `crates/bench/benches/*.rs` or `crates/bench/src/**`.
pub fn check_knob_references(
    cost_path: &str,
    cost_src: &str,
    bench_sources: &[(String, String)],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in knob_fields(cost_src) {
        let referenced = bench_sources.iter().any(|(_, src)| src.contains(&f.name));
        if !referenced {
            out.push(Diagnostic::error(
                Code::KnobUnreferenced,
                format!("{cost_path}:{}", f.line),
                format!(
                    "CostKnobs field `{}` is referenced by no ablation bench or sweep \
                     under crates/bench/",
                    f.name
                ),
            ));
        }
    }
    out
}

fn brace_delta(line: &str) -> i64 {
    let mut d = 0;
    for c in line.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = "\
pub struct CostKnobs {
    /// Documented knob.
    pub alpha: f64,
    pub beta: f64,
    /// Documented but defaultless.
    pub gamma: f64,
}

impl Default for CostKnobs {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 2.0,
        }
    }
}
";

    #[test]
    fn parses_fields_and_docs() {
        let fields = knob_fields(FIXTURE);
        assert_eq!(fields.len(), 3);
        assert!(fields[0].documented && fields[0].name == "alpha");
        assert!(!fields[1].documented && fields[1].name == "beta");
        assert!(fields[2].documented && fields[2].name == "gamma");
    }

    #[test]
    fn missing_doc_and_default_flagged() {
        let diags = check_knob_declarations("cost.rs", FIXTURE);
        let missing_doc: Vec<_> = diags
            .iter()
            .filter(|d| d.code() == Code::KnobMissingDoc)
            .collect();
        let missing_default: Vec<_> = diags
            .iter()
            .filter(|d| d.code() == Code::KnobMissingDefault)
            .collect();
        assert_eq!(missing_doc.len(), 1);
        assert!(missing_doc[0].message().contains("beta"));
        assert_eq!(missing_default.len(), 1);
        assert!(missing_default[0].message().contains("gamma"));
    }

    #[test]
    fn unreferenced_knob_flagged() {
        let benches = vec![(
            "benches/abl.rs".to_string(),
            "knobs.alpha = 2.0; knobs.gamma *= 0.5;".to_string(),
        )];
        let diags = check_knob_references("cost.rs", FIXTURE, &benches);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::KnobUnreferenced);
        assert!(diags[0].message().contains("beta"));
    }
}
