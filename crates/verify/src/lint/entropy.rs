//! RV017: no wall-clock or entropy sources in result-producing library code.
//!
//! A simulated-time simulator must never consult host time or OS entropy on
//! a result path: `SystemTime::now` and friends make artifacts differ run to
//! run, which the byte-identical determinism contract forbids. Randomness
//! must come from explicitly seeded generators (the workspace threads a
//! fixed seed through every driver). Only the recsim-bench timing binaries
//! — whose entire purpose is measuring host wall-clock — are exempt.

use super::source;
use crate::{Code, Diagnostic};

/// The wall-clock and entropy tokens RV017 looks for. Assembled at runtime
/// so this file does not flag itself when the scanner runs over the verify
/// crate. `SystemTime` catches both `now()` and `UNIX_EPOCH` arithmetic;
/// `Instant::now` leaves the `Instant` *type* usable for plumbing
/// externally-measured durations.
fn entropy_tokens() -> [String; 6] {
    [
        format!("System{}", "Time"),
        format!("Instant::{}", "now"),
        format!("thread_{}(", "rng"),
        format!("from_{}(", "entropy"),
        format!("Os{}", "Rng"),
        format!("rand::{}(", "random"),
    ]
}

/// True for files RV017 exempts: recsim-bench exists to time real execution,
/// so its sources (including its `src/bin/` timing harnesses) may read the
/// host clock; and the profiler's single clock module — every recsim-prof
/// timestamp funnels through `crates/prof/src/clock.rs`, keeping the rest
/// of the profiler (and everything it instruments) under the ban.
pub fn is_exempt(path: &str) -> bool {
    path.starts_with("crates/bench/src/") || path == "crates/prof/src/clock.rs"
}

/// RV017 for one library source file.
pub fn check_entropy_sources(path: &str, content: &str) -> Vec<Diagnostic> {
    if is_exempt(path) {
        return Vec::new();
    }
    source::token_sites(content, &entropy_tokens())
        .into_iter()
        .map(|(line, token)| {
            Diagnostic::error(
                Code::EntropyInResultPath,
                format!("{path}:{line}"),
                format!(
                    "`{token}` reads host time or OS entropy; results must \
                     derive only from the simulated clock and explicitly \
                     seeded generators"
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_in_library_is_rv017() {
        let src = "use std::time::Instant;\n\
                   pub fn f() -> u128 {\n    Instant::now().elapsed().as_nanos()\n}\n";
        let diags = check_entropy_sources("crates/sim/src/des.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::EntropyInResultPath);
        assert_eq!(diags[0].location(), "crates/sim/src/des.rs:3");
    }

    #[test]
    fn seeded_rng_passes() {
        let src = "use rand::SeedableRng;\n\
                   pub fn f() -> rand::rngs::StdRng { rand::rngs::StdRng::seed_from_u64(7) }\n";
        assert!(check_entropy_sources("crates/data/src/synthetic.rs", src).is_empty());
    }

    #[test]
    fn bench_timing_sources_are_exempt() {
        let src = "fn main() { let t = std::time::Instant::now(); }\n";
        assert!(check_entropy_sources("crates/bench/src/bin/all_experiments.rs", src).is_empty());
    }

    #[test]
    fn profiler_clock_module_alone_is_exempt() {
        let src = "pub fn now() -> u128 { std::time::Instant::now().elapsed().as_nanos() }\n";
        assert!(check_entropy_sources("crates/prof/src/clock.rs", src).is_empty());
        // The rest of the profiler must route through the clock module.
        let diags = check_entropy_sources("crates/prof/src/record.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::EntropyInResultPath);
    }

    #[test]
    fn test_code_is_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::time::SystemTime::now(); }\n}\n";
        assert!(check_entropy_sources("crates/hw/src/roofline.rs", src).is_empty());
    }
}
