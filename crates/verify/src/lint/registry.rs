//! Experiment-registry completeness (RV006, RV007): every `fig*`/`table*`
//! binary under `crates/bench/src/bin/` must have a matching
//! `core::experiments` module (so `all_experiments` and the CLI can drive
//! it) and a row in EXPERIMENTS.md (so the reproduction claim is written
//! down).

use crate::{Code, Diagnostic};

/// The registry key for a bench binary stem: `fig01_production_throughput`
/// → `fig01`, `table2_production_models` → `table2`. Non-figure/table
/// binaries (studies, `all_experiments`) return `None` — they are outside
/// this rule's scope.
pub fn registry_key(bin_stem: &str) -> Option<&str> {
    let key = bin_stem.split('_').next().unwrap_or(bin_stem);
    let suffix = key
        .strip_prefix("fig")
        .or_else(|| key.strip_prefix("table"))?;
    if !suffix.is_empty() && suffix.chars().all(|c| c.is_ascii_digit()) {
        Some(key)
    } else {
        None
    }
}

/// RV006 + RV007 over pure inputs: the bench binary stems, the experiment
/// module names declared in `core::experiments`, and the EXPERIMENTS.md
/// text.
pub fn check_registry(
    bin_stems: &[String],
    experiment_modules: &[String],
    experiments_md: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for stem in bin_stems {
        let Some(key) = registry_key(stem) else {
            continue;
        };
        if !experiment_modules.iter().any(|m| m == key) {
            out.push(Diagnostic::error(
                Code::ExperimentMissingModule,
                format!("crates/bench/src/bin/{stem}.rs"),
                format!("no `core::experiments::{key}` module backs this binary"),
            ));
        }
        if !experiments_md.contains(stem.as_str()) {
            out.push(Diagnostic::error(
                Code::ExperimentMissingDocRow,
                format!("crates/bench/src/bin/{stem}.rs"),
                format!("`{stem}` has no row in EXPERIMENTS.md"),
            ));
        }
    }
    out
}

/// Extracts `mod name;` / `pub mod name;` declarations from
/// `core/src/experiments/mod.rs`.
pub fn experiment_modules(mod_rs: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in mod_rs.lines() {
        let t = raw.trim_start();
        let rest = t
            .strip_prefix("pub mod ")
            .or_else(|| t.strip_prefix("mod "));
        if let Some(rest) = rest {
            if let Some(name) = rest.strip_suffix(';') {
                out.push(name.trim().to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys() {
        assert_eq!(registry_key("fig01_production_throughput"), Some("fig01"));
        assert_eq!(registry_key("table3_cpu_gpu_comparison"), Some("table3"));
        assert_eq!(registry_key("locality_study"), None);
        assert_eq!(registry_key("all_experiments"), None);
        assert_eq!(registry_key("figment_thing"), None);
    }

    #[test]
    fn module_extraction() {
        let src = "pub mod fig01;\nmod helpers;\n// mod disabled;\npub mod table1;\n";
        assert_eq!(experiment_modules(src), ["fig01", "helpers", "table1"]);
    }

    #[test]
    fn missing_module_and_row_flagged() {
        let bins = vec![
            "fig01_throughput".to_string(),
            "fig02_landscape".to_string(),
        ];
        let modules = vec!["fig01".to_string()];
        let md = "| Fig 1 | `fig01_throughput` | … |";
        let diags = check_registry(&bins, &modules, md);
        assert_eq!(diags.len(), 2);
        assert!(diags
            .iter()
            .any(|d| d.code() == Code::ExperimentMissingModule
                && d.location().contains("fig02_landscape")));
        assert!(diags
            .iter()
            .any(|d| d.code() == Code::ExperimentMissingDocRow
                && d.message().contains("fig02_landscape")));
    }
}
