//! RV016: floating-point reductions near the parallel pool must document
//! their accumulation order.
//!
//! Float addition is not associative, so the *order* of a reduction is part
//! of the result. In files that touch `recsim_pool` — where partial results
//! may arrive from parallel workers — every float reduction must carry an
//! explicit `// detsan: reduction-order …` annotation on the same line or
//! within the three lines above it, documenting the chosen (deterministic)
//! order. The annotation grammar is documented in DESIGN.md §11.

use super::source;
use crate::{Code, Diagnostic};

/// The annotation RV016 looks for (checked on *raw* lines, since the token
/// scanner strips comments).
pub const ANNOTATION: &str = "detsan: reduction-order";

/// How many raw lines above a reduction site the annotation may sit.
const ANNOTATION_WINDOW: usize = 3;

/// The reduction-call tokens RV016 looks for. Assembled at runtime so this
/// file does not flag itself when the scanner runs over the verify crate.
fn reduction_tokens() -> [String; 5] {
    [
        format!(".su{}()", "m"),
        format!(".su{}::<", "m"),
        format!(".fo{}(", "ld"),
        format!(".pro{}()", "duct"),
        format!(".pro{}::<", "duct"),
    ]
}

/// Marker that puts a file in RV016 scope. Assembled at runtime so files
/// merely *mentioning* the pool in diagnostics (like the verify crate) can
/// keep the name out of their string literals instead of being scoped in.
fn pool_marker() -> String {
    format!("recsim_{}", "pool")
}

/// Type names that mark a reduction line as float-accumulating. `Duration`
/// counts: the workspace's `hw::units::Duration` wraps an `f64`.
fn float_markers() -> [&'static str; 3] {
    ["f32", "f64", "Duration"]
}

/// True when the file is in RV016 scope: its non-test code references the
/// parallel pool, so reductions here may be fed by parallel partials.
pub fn in_scope(content: &str) -> bool {
    let marker = pool_marker();
    source::non_test_lines(content)
        .iter()
        .any(|l| l.contains(&marker))
}

/// RV016 for one library source file.
pub fn check_float_reductions(path: &str, content: &str) -> Vec<Diagnostic> {
    if !in_scope(content) {
        return Vec::new();
    }
    let raw_lines: Vec<&str> = content.lines().collect();
    let stripped = source::non_test_lines(content);
    let tokens = reduction_tokens();
    let markers = float_markers();
    let mut out = Vec::new();
    for (idx, line) in stripped.iter().enumerate() {
        let is_reduction = tokens.iter().any(|t| line.contains(t.as_str()));
        if !is_reduction || !markers.iter().any(|m| line.contains(m)) {
            continue;
        }
        let window_start = idx.saturating_sub(ANNOTATION_WINDOW);
        let annotated = raw_lines[window_start..=idx]
            .iter()
            .any(|raw| raw.contains(ANNOTATION));
        if !annotated {
            out.push(Diagnostic::error(
                Code::UnannotatedFloatReduction,
                format!("{path}:{}", idx + 1),
                "float reduction in a pool-adjacent file without a \
                 `detsan: reduction-order` annotation; document the \
                 accumulation order (see DESIGN.md \u{a7}11) or restructure \
                 the reduction"
                    .to_string(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scoped(body: &str) -> String {
        format!("use recsim_pool::par_map;\n{body}")
    }

    #[test]
    fn unannotated_float_sum_is_rv016() {
        let src = scoped("pub fn total(xs: &[f32]) -> f32 {\n    xs.iter().sum::<f32>()\n}\n");
        let diags = check_float_reductions("crates/core/src/x.rs", &src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::UnannotatedFloatReduction);
        assert_eq!(diags[0].location(), "crates/core/src/x.rs:3");
    }

    #[test]
    fn annotation_on_preceding_line_passes() {
        let src = scoped(
            "pub fn total(xs: &[f32]) -> f32 {\n    \
             // detsan: reduction-order — serial slice order\n    \
             xs.iter().sum::<f32>()\n}\n",
        );
        assert!(check_float_reductions("crates/core/src/x.rs", &src).is_empty());
    }

    #[test]
    fn integer_reductions_pass() {
        let src = scoped("pub fn total(xs: &[u64]) -> u64 { xs.iter().sum::<u64>() }\n");
        assert!(check_float_reductions("crates/core/src/x.rs", &src).is_empty());
    }

    #[test]
    fn out_of_scope_file_passes() {
        let src = "pub fn total(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }\n";
        assert!(check_float_reductions("crates/metrics/src/x.rs", src).is_empty());
    }

    #[test]
    fn fold_over_duration_is_in_scope() {
        let src = scoped(
            "pub fn max_d(xs: &[Duration]) -> Duration {\n    \
             xs.iter().copied().fold(Duration::ZERO, Duration::max)\n}\n",
        );
        let diags = check_float_reductions("crates/sim/src/des.rs", &src);
        assert_eq!(diags.len(), 1);
    }
}
