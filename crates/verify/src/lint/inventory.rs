//! RV013: every crate under `crates/` is documented. A crate must appear
//! in the DESIGN.md workspace inventory (§2, as `(package-name)` next to
//! its directory) and have a layer in the dependency DAG
//! ([`super::layering::allowed_internal`]). New crates that skip either
//! half are invisible to reviewers and to the layering rules — this lint
//! makes "add the crate to the docs and the DAG" a hard gate.

use super::layering;
use crate::{Code, Diagnostic};

/// RV013 for one crate manifest under `crates/`.
pub fn check_inventory(path: &str, package: &str, design_md: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if package.is_empty() {
        out.push(Diagnostic::error(
            Code::CrateUndocumented,
            path,
            "manifest has no `[package] name`, so the crate cannot be checked \
             against the DESIGN.md inventory",
        ));
        return out;
    }
    if !design_md.contains(&format!("({package})")) {
        out.push(Diagnostic::error(
            Code::CrateUndocumented,
            path,
            format!(
                "crate `{package}` is missing from the DESIGN.md §2 workspace \
                 inventory — document it as `({package})` next to its directory"
            ),
        ));
    }
    if layering::allowed_internal(package).is_none() {
        out.push(Diagnostic::error(
            Code::CrateUndocumented,
            path,
            format!(
                "crate `{package}` has no layer in the dependency DAG — add it \
                 to `allowed_internal` in crates/verify/src/lint/layering.rs"
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DESIGN: &str = "├── shard/  (recsim-shard)  auto placement\n\
                          ├── sim/    (recsim-sim)    simulator\n";

    #[test]
    fn documented_crate_passes() {
        assert!(check_inventory("crates/sim/Cargo.toml", "recsim-sim", DESIGN).is_empty());
    }

    #[test]
    fn missing_inventory_row_is_flagged() {
        let diags = check_inventory("crates/hw/Cargo.toml", "recsim-hw", DESIGN);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::CrateUndocumented);
        assert!(diags[0].to_string().contains("workspace"));
    }

    #[test]
    fn unlayered_crate_is_flagged_twice() {
        // Not in the fixture inventory AND unknown to the DAG.
        let diags = check_inventory("crates/new/Cargo.toml", "recsim-new", DESIGN);
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code() == Code::CrateUndocumented));
    }

    #[test]
    fn nameless_manifest_is_flagged() {
        let diags = check_inventory("crates/x/Cargo.toml", "", DESIGN);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), Code::CrateUndocumented);
    }
}
