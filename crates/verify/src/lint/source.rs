//! Source-level rules: `#![forbid(unsafe_code)]` presence (RV001) and
//! panicking calls in non-test library code (RV002).
//!
//! Rules are pure functions over `(path, content)` so unit tests can run
//! them against inline fixture snippets without touching the filesystem.

use crate::{Code, Diagnostic};

/// RV001: a library crate root must carry `#![forbid(unsafe_code)]`.
pub fn check_forbid_unsafe(path: &str, content: &str) -> Option<Diagnostic> {
    let has = content
        .lines()
        .any(|l| l.trim_start().starts_with("#![forbid(unsafe_code)]"));
    if has {
        None
    } else {
        Some(Diagnostic::error(
            Code::MissingForbidUnsafe,
            path,
            "crate root does not declare #![forbid(unsafe_code)]",
        ))
    }
}

/// The panicking tokens RV002 looks for. Assembled at runtime so this file
/// does not flag itself when the scanner runs over the verify crate.
fn panic_tokens() -> [String; 5] {
    [
        format!(".unw{}()", "rap"),
        format!(".exp{}(", "ect"),
        format!("pa{}!", "nic"),
        format!("to{}!", "do"),
        format!("unimple{}!", "mented"),
    ]
}

/// RV002 scanner: returns `(line_number, token)` for every panicking call
/// in non-test code. Line numbers are 1-based; the token is the matched
/// text (e.g. a trailing `(` marks a call prefix).
pub fn panic_sites(content: &str) -> Vec<(usize, String)> {
    token_sites(content, &panic_tokens())
}

/// The comment- and test-stripped view of a source file: one entry per
/// input line, in order, so indices are `line_number - 1`. Lines inside
/// `#[cfg(test)]` items (and the attribute lines themselves) come back
/// empty; code lines come back with any trailing `//` comment removed.
/// Shared by every token-scanning rule (RV002, RV011, RV015–RV018).
///
/// The `#[cfg(test)]` handling: after the attribute we look for the item it
/// decorates and swallow its brace-delimited body by brace counting. String
/// literals are intentionally not parsed — a lightweight token scan is the
/// contract here, and the workspace style keeps scanned tokens out of
/// message strings.
pub fn non_test_lines(content: &str) -> Vec<String> {
    let mut out = Vec::new();

    enum State {
        Code,
        /// Saw `#[cfg(test)]`; consuming any further stacked attributes.
        PendingItem,
        /// The test item's `{` opens on a later line.
        WaitingOpen,
        /// Inside the test item's body at the given brace depth.
        Skipping(i64),
    }
    let mut state = State::Code;

    for raw in content.lines() {
        let line = strip_line_comment(raw);
        let trimmed = line.trim_start();
        let delta = brace_delta(line);
        let mut keep = false;

        match state {
            State::Code => {
                if trimmed.starts_with("#[cfg(test)]") {
                    state = State::PendingItem;
                } else {
                    keep = true;
                }
            }
            State::PendingItem => {
                if trimmed.starts_with("#[") {
                    // stacked attributes (#[cfg(test)] #[allow(...)])
                } else {
                    state = if line.contains('{') {
                        if delta > 0 {
                            State::Skipping(delta)
                        } else {
                            State::Code // opened and closed on one line
                        }
                    } else if trimmed.ends_with(';') {
                        State::Code // `mod tests;` — out-of-line file, skip just this line
                    } else {
                        State::WaitingOpen
                    };
                }
            }
            State::WaitingOpen => {
                if line.contains('{') {
                    state = if delta > 0 {
                        State::Skipping(delta)
                    } else {
                        State::Code
                    };
                }
            }
            State::Skipping(depth) => {
                let depth = depth + delta;
                state = if depth <= 0 {
                    State::Code
                } else {
                    State::Skipping(depth)
                };
            }
        }
        out.push(if keep {
            line.to_string()
        } else {
            String::new()
        });
    }
    out
}

/// Generic non-test token scanner shared by RV002 and RV011 (and, via
/// [`non_test_lines`], the detsan lints): returns `(line_number, token)`
/// for every match outside comments and test code.
pub fn token_sites(content: &str, tokens: &[String]) -> Vec<(usize, String)> {
    let mut sites = Vec::new();
    for (idx, line) in non_test_lines(content).iter().enumerate() {
        for tok in tokens {
            let mut start = 0;
            while let Some(pos) = line[start..].find(tok.as_str()) {
                sites.push((idx + 1, tok.clone()));
                start += pos + tok.len();
            }
        }
    }
    sites
}

/// RV002 with the per-file budget applied: over budget is an error, under
/// budget is an RV010 stale-allowlist warning (ratchet the budget down).
pub fn check_panic_budget(path: &str, content: &str, budget: usize) -> Vec<Diagnostic> {
    let sites = panic_sites(content);
    let actual = sites.len();
    let mut out = Vec::new();
    if actual > budget {
        for (line, token) in &sites {
            out.push(Diagnostic::error(
                Code::PanicInLibrary,
                format!("{path}:{line}"),
                format!(
                    "`{token}` in library code ({actual} site(s), budget {budget}); \
                     return a Diagnostic/Result instead or raise the budget in \
                     crates/verify/panic_allowlist.txt"
                ),
            ));
        }
    } else if actual < budget {
        out.push(Diagnostic::warning(
            Code::StaleAllowlist,
            path.to_string(),
            format!(
                "allowlist budget is {budget} but only {actual} panicking site(s) remain; \
                 ratchet it down (or run `lint --write-allowlist`)"
            ),
        ));
    }
    out
}

/// Strips a trailing `//…` comment. Does not understand string literals;
/// good enough for this workspace's style.
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn brace_delta(line: &str) -> i64 {
    let mut d = 0;
    for c in line.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forbid_unsafe_detected() {
        assert!(check_forbid_unsafe("a.rs", "#![forbid(unsafe_code)]\npub fn f() {}").is_none());
        let d = check_forbid_unsafe("a.rs", "pub fn f() {}").expect("missing attr");
        assert_eq!(d.code(), Code::MissingForbidUnsafe);
    }

    #[test]
    fn finds_panicking_tokens() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\nfn g() { panic!(\"boom\") }\n";
        let sites = panic_sites(src);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].0, 2);
        assert!(sites[0].1.contains("unwrap"));
        assert_eq!(sites[1].0, 4);
        assert!(sites[1].1.contains("nic!"));
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n\
                   fn g(r: Result<u8, u8>) -> bool { r.expect_err(\"no\") == 1 }\n";
        assert!(panic_sites(src).is_empty());
    }

    #[test]
    fn comments_and_doctests_ignored() {
        let src = "/// let v = x.unwrap();\n// y.expect(\"no\")\nfn f() {}\n";
        assert!(panic_sites(src).is_empty());
    }

    #[test]
    fn cfg_test_modules_exempt() {
        let src = concat!(
            "fn lib() -> u8 { 1 }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    use super::*;\n",
            "    #[test]\n",
            "    fn t() { assert_eq!(lib(), 1); Some(1).unwrap(); }\n",
            "}\n",
            "fn after() -> Option<u8> { None.unwrap() }\n",
        );
        let sites = panic_sites(src);
        assert_eq!(
            sites.len(),
            1,
            "only the post-module site counts: {sites:?}"
        );
        assert_eq!(sites[0].0, 8);
    }

    #[test]
    fn budget_over_and_under() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let over = check_panic_budget("f.rs", src, 0);
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].code(), Code::PanicInLibrary);
        assert_eq!(over[0].severity(), crate::Severity::Error);

        let exact = check_panic_budget("f.rs", src, 1);
        assert!(exact.is_empty());

        let stale = check_panic_budget("f.rs", src, 3);
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].code(), Code::StaleAllowlist);
        assert_eq!(stale[0].severity(), crate::Severity::Warning);
    }
}
