//! Closed-form FLOP and byte counts for the instrumented kernels.
//!
//! Each constructor encodes the arithmetic of one `recsim-model` kernel as
//! a function of its shape, mirroring the paper's roofline accounting: a
//! multiply-accumulate is 2 FLOPs, and bytes count each operand matrix read
//! once and each output written once at `f32` width (4 bytes). The
//! formulas are duplicated independently in the proptest suite so a
//! drifted kernel or counter shows up as a test failure, not a silent
//! bias.

use serde::{Deserialize, Serialize};

/// Bytes per element everywhere in the model (all tensors are `f32`).
pub const ELEM_BYTES: u64 = 4;

/// Work performed inside one profiling scope: floating-point operations
/// and bytes moved, both from closed-form shape arithmetic (not hardware
/// counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Floating-point operations (multiply and add counted separately).
    pub flops: u64,
    /// Bytes read plus bytes written, at `f32` width.
    pub bytes: u64,
}

impl Counters {
    /// No work — for pure phases (data generation, step wrappers) whose
    /// arithmetic is attributed to the leaf kernels they contain.
    pub fn none() -> Self {
        Self { flops: 0, bytes: 0 }
    }

    /// Explicit counts, for call sites with bespoke arithmetic.
    pub fn new(flops: u64, bytes: u64) -> Self {
        Self { flops, bytes }
    }

    /// Linear forward `y = x·W + b` for `x: b×i`, `W: i×o`:
    /// GEMM (`2·b·i·o`) plus bias row-add (`b·o`); reads `x`, `W`, `b`,
    /// writes `y`.
    pub fn linear_forward(b: usize, i: usize, o: usize) -> Self {
        let (b, i, o) = (b as u64, i as u64, o as u64);
        Self {
            flops: 2 * b * i * o + b * o,
            bytes: ELEM_BYTES * (b * i + i * o + o + b * o),
        }
    }

    /// Linear backward: `dW = xᵀ·dy` (`2·b·i·o`), `db = Σrows dy` (`b·o`),
    /// `dx = dy·Wᵀ` (`2·b·i·o`); reads `x`, `dy`, `W`, writes `dW`, `db`,
    /// `dx`.
    pub fn linear_backward(b: usize, i: usize, o: usize) -> Self {
        let (b, i, o) = (b as u64, i as u64, o as u64);
        Self {
            flops: 4 * b * i * o + b * o,
            bytes: ELEM_BYTES * (2 * b * i + b * o + 2 * i * o + o),
        }
    }

    /// Embedding-bag forward: `lookups` gathered rows of width `dim`
    /// sum-pooled into `batch` bags — one add per gathered element; reads
    /// the gathered rows, writes the pooled output.
    pub fn embedding_forward(lookups: usize, batch: usize, dim: usize) -> Self {
        let (l, b, d) = (lookups as u64, batch as u64, dim as u64);
        Self {
            flops: l * d,
            bytes: ELEM_BYTES * (l * d + b * d),
        }
    }

    /// Embedding-bag backward: `lookups` gradient rows coalesced into
    /// `unique` distinct table rows — one add per scattered element; reads
    /// the upstream gradient per lookup, reads+writes each unique output
    /// row.
    pub fn embedding_backward(lookups: usize, unique: usize, dim: usize) -> Self {
        let (l, u, d) = (lookups as u64, unique as u64, dim as u64);
        Self {
            flops: l * d,
            bytes: ELEM_BYTES * (l * d + 2 * u * d),
        }
    }

    /// Pairwise-dot interaction forward over `vectors` embeddings of width
    /// `dim` per example: `pairs = vectors·(vectors−1)/2` dot products of
    /// length `dim` (2 FLOPs per element); reads the vectors, writes one
    /// scalar per pair. Excludes the projection GEMM (its own scope).
    pub fn interaction_dot_forward(batch: usize, vectors: usize, dim: usize) -> Self {
        let (b, n, d) = (batch as u64, vectors as u64, dim as u64);
        let p = n * (n - 1) / 2;
        Self {
            flops: 2 * b * p * d,
            bytes: ELEM_BYTES * (b * n * d + b * p),
        }
    }

    /// Pairwise-dot interaction backward: each pair gradient `g` feeds two
    /// FMA row accumulations (`dz_i += g·z_j`, `dz_j += g·z_i`), 4 FLOPs
    /// per pair element; reads the pair gradients and the vectors, writes
    /// the vector gradients.
    pub fn interaction_dot_backward(batch: usize, vectors: usize, dim: usize) -> Self {
        let (b, n, d) = (batch as u64, vectors as u64, dim as u64);
        let p = n * (n - 1) / 2;
        Self {
            flops: 4 * b * p * d,
            bytes: ELEM_BYTES * (b * p + 2 * b * n * d),
        }
    }

    /// Concat interaction (either direction): a pure copy of `elements`
    /// values — zero FLOPs, one read and one write per element.
    pub fn concat_copy(elements: usize) -> Self {
        Self {
            flops: 0,
            bytes: ELEM_BYTES * 2 * elements as u64,
        }
    }

    /// Binary cross-entropy with logits over `batch` examples: ~10 FLOPs
    /// per example (exp, ln1p, sigmoid, loss and gradient arithmetic);
    /// reads logits and labels, writes the gradient column.
    pub fn bce_loss(batch: usize) -> Self {
        let b = batch as u64;
        Self {
            flops: 10 * b,
            bytes: ELEM_BYTES * 3 * b,
        }
    }

    /// SGD update of `params` elements: fused multiply-subtract
    /// (`p −= lr·g`, 2 FLOPs each); reads param and gradient, writes param.
    pub fn sgd_update(params: usize) -> Self {
        let n = params as u64;
        Self {
            flops: 2 * n,
            bytes: ELEM_BYTES * 3 * n,
        }
    }

    /// Adagrad update of `params` elements: `a += g²` then
    /// `p −= lr·g/(√a+ε)` (~7 FLOPs each); reads param, gradient and
    /// accumulator, writes param and accumulator.
    pub fn adagrad_update(params: usize) -> Self {
        let n = params as u64;
        Self {
            flops: 7 * n,
            bytes: ELEM_BYTES * 5 * n,
        }
    }

    /// Row-wise Adagrad over `rows`×`dim` elements: per-row mean-square
    /// (2 FLOPs/elem) plus uniform scaled subtract (2 FLOPs/elem) and ~3
    /// per-row scalar ops; accumulator is one scalar per row.
    pub fn row_wise_adagrad_update(rows: usize, dim: usize) -> Self {
        let (r, d) = (rows as u64, dim as u64);
        Self {
            flops: 4 * r * d + 3 * r,
            bytes: ELEM_BYTES * (3 * r * d + 2 * r),
        }
    }

    /// Element-wise sum of two counter sets (for call sites that fuse
    /// several sub-kernels under one scope).
    pub fn merge(self, other: Self) -> Self {
        Self {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
        }
    }

    /// Arithmetic intensity in FLOP/byte; infinite when no bytes move.
    pub fn intensity(self) -> f64 {
        if self.bytes == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_forward_matches_hand_count() {
        // 2×3 input through a 3×4 layer: GEMM 2·2·3·4 = 48, bias 8.
        let c = Counters::linear_forward(2, 3, 4);
        assert_eq!(c.flops, 56);
        assert_eq!(c.bytes, 4 * (6 + 12 + 4 + 8));
    }

    #[test]
    fn backward_costs_about_twice_forward() {
        let f = Counters::linear_forward(64, 128, 256);
        let b = Counters::linear_backward(64, 128, 256);
        let ratio = b.flops as f64 / f.flops as f64;
        assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn embedding_counts_scale_with_lookups() {
        let c = Counters::embedding_forward(120, 32, 16);
        assert_eq!(c.flops, 120 * 16);
        assert_eq!(c.bytes, 4 * (120 * 16 + 32 * 16));
        let b = Counters::embedding_backward(120, 50, 16);
        assert_eq!(b.flops, 120 * 16);
        assert_eq!(b.bytes, 4 * (120 * 16 + 2 * 50 * 16));
    }

    #[test]
    fn interaction_pair_count_is_triangular() {
        // 9 vectors -> 36 pairs.
        let c = Counters::interaction_dot_forward(8, 9, 32);
        assert_eq!(c.flops, 2 * 8 * 36 * 32);
        assert_eq!(
            Counters::interaction_dot_backward(8, 9, 32).flops,
            2 * c.flops
        );
    }

    #[test]
    fn optimizer_variants_order_by_cost() {
        let n = 1000;
        let sgd = Counters::sgd_update(n);
        let ada = Counters::adagrad_update(n);
        assert!(sgd.flops < ada.flops);
        assert!(sgd.bytes < ada.bytes);
        let rw = Counters::row_wise_adagrad_update(100, 10);
        assert!(rw.flops > sgd.flops && rw.flops < ada.flops);
    }

    #[test]
    fn intensity_and_merge() {
        let a = Counters::new(100, 50);
        assert!((a.intensity() - 2.0).abs() < 1e-12);
        assert_eq!(Counters::new(1, 0).intensity(), f64::INFINITY);
        let m = a.merge(Counters::new(10, 10));
        assert_eq!(m, Counters::new(110, 60));
        assert_eq!(Counters::none(), Counters::default());
        assert_eq!(Counters::concat_copy(7), Counters::new(0, 56));
        assert_eq!(Counters::bce_loss(3), Counters::new(30, 36));
    }
}
