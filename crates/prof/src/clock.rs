//! The profiler's single wall-clock reader.
//!
//! Every timestamp in recsim-prof comes from [`monotonic_nanos`], the one
//! sanctioned host-clock read outside recsim-bench (RV017 exempts exactly
//! this file). Keeping the read in one place makes the determinism audit
//! trivial: timing values measured here flow only into profiler reports,
//! never into training results, simulated clocks, or experiment artifacts.

use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide anchor so timestamps are small, monotone offsets rather
/// than raw `Instant`s (which cannot be turned into integers directly).
static START: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the first call in this process. Monotone and cheap;
/// the first call initializes the anchor and returns a small value.
pub fn monotonic_nanos() -> u64 {
    let anchor = *START.get_or_init(Instant::now);
    // Saturate on the (absurd) >584-year overflow instead of wrapping.
    u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nanos_are_monotone() {
        let a = monotonic_nanos();
        let b = monotonic_nanos();
        assert!(b >= a, "clock went backwards: {a} -> {b}");
    }
}
