//! The instrumented-operator inventory.
//!
//! Every hot-path kernel in `recsim-model`, every loop phase in
//! `recsim-train`, and every serving stage in `recsim-serve` maps to
//! exactly one [`Op`]. The inventory is closed on purpose: RV019
//! cross-checks that each variant listed in [`Op::ALL`] has at least one
//! instrumentation point (`prof::scope(Op::Variant, ...)`) in the
//! model/train/serve sources, so new kernels cannot silently escape
//! measurement.

use serde::{Deserialize, Serialize};

/// One instrumented operator (leaf kernel) or training-loop phase.
///
/// Leaves are the mutually exclusive kernels whose times sum to the
/// training step; phases ([`Op::is_phase`]) wrap whole loop sections and
/// therefore *contain* leaf time — share accounting must not mix the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Dense linear layer forward: `y = x·W + b` (GEMM + bias row-add).
    LinearFwd,
    /// Dense linear layer backward: `dW = xᵀ·dy`, `db = Σ dy`, `dx = dy·Wᵀ`.
    LinearBwd,
    /// Embedding-bag forward: gather rows by index and sum-pool per bag.
    EmbGather,
    /// Embedding-bag backward: sort/dedup indices and coalesce gradients.
    EmbScatter,
    /// Feature-interaction forward (pairwise dots / concat), excluding the
    /// projection GEMM which records as [`Op::LinearFwd`].
    InteractionFwd,
    /// Feature-interaction backward, excluding the projection GEMM.
    InteractionBwd,
    /// Binary cross-entropy with logits: loss plus logit gradient.
    LossBce,
    /// Dense optimizer update (MLP weights/biases, projection).
    OptDense,
    /// Sparse optimizer update (embedding-table rows).
    OptSparse,
    /// Serving embedding-cache probe: key packing plus hit/miss lookups
    /// for one micro-batch.
    ServeCacheLookup,
    /// Serving micro-batch assembly: gathering request indices and dense
    /// features into a `MiniBatch`-shaped staging buffer.
    ServeBatchAssemble,
    /// Phase: synthetic batch generation (the reader).
    DataGen,
    /// Phase: one full training step (forward, loss, backward, apply).
    TrainStep,
    /// Phase: held-out evaluation passes.
    Eval,
    /// Phase: one served micro-batch end to end (assemble, cache, forward).
    ServeStep,
}

impl Op {
    /// Every operator, in report order: leaf kernels first, phases last.
    pub const ALL: [Op; 15] = [
        Op::LinearFwd,
        Op::LinearBwd,
        Op::EmbGather,
        Op::EmbScatter,
        Op::InteractionFwd,
        Op::InteractionBwd,
        Op::LossBce,
        Op::OptDense,
        Op::OptSparse,
        Op::ServeCacheLookup,
        Op::ServeBatchAssemble,
        Op::DataGen,
        Op::TrainStep,
        Op::Eval,
        Op::ServeStep,
    ];

    /// Stable string id, `area/kernel` style (mirrors detsan stage labels).
    pub fn id(self) -> &'static str {
        match self {
            Op::LinearFwd => "linear/fwd",
            Op::LinearBwd => "linear/bwd",
            Op::EmbGather => "emb/gather",
            Op::EmbScatter => "emb/scatter",
            Op::InteractionFwd => "interaction/fwd",
            Op::InteractionBwd => "interaction/bwd",
            Op::LossBce => "loss/bce",
            Op::OptDense => "opt/dense",
            Op::OptSparse => "opt/sparse",
            Op::ServeCacheLookup => "serve/cache",
            Op::ServeBatchAssemble => "serve/batch",
            Op::DataGen => "data/gen",
            Op::TrainStep => "train/step",
            Op::Eval => "train/eval",
            Op::ServeStep => "serve/step",
        }
    }

    /// Dense index into per-op accumulator arrays; inverse of `ALL[i]`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// True for loop phases that *contain* leaf-kernel time ([`Op::DataGen`],
    /// [`Op::TrainStep`], [`Op::Eval`], [`Op::ServeStep`]). Leaf shares are
    /// reported against the phase total; summing leaves and phases together
    /// double-counts.
    pub fn is_phase(self) -> bool {
        matches!(self, Op::DataGen | Op::TrainStep | Op::Eval | Op::ServeStep)
    }

    /// Parses a stable id back into an operator.
    pub fn from_id(id: &str) -> Option<Op> {
        Op::ALL.into_iter().find(|op| op.id() == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_indices_are_dense() {
        for (i, op) in Op::ALL.into_iter().enumerate() {
            assert_eq!(op.index(), i, "{op:?} index");
            assert_eq!(Op::from_id(op.id()), Some(op), "{op:?} id round trip");
        }
        assert_eq!(Op::from_id("linear/unknown"), None);
    }

    #[test]
    fn phases_trail_the_leaf_kernels() {
        let first_phase = Op::ALL.iter().position(|op| op.is_phase()).unwrap();
        assert!(
            Op::ALL[first_phase..].iter().all(|op| op.is_phase()),
            "report order keeps phases contiguous at the end"
        );
        assert_eq!(Op::ALL.len() - first_phase, 4);
    }
}
