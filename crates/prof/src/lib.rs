//! recsim-prof: a low-overhead scoped profiler for the real training hot
//! path.
//!
//! The simulator predicts where DLRM training time goes; this crate
//! *measures* it. Every `recsim-model` kernel and `recsim-train` loop
//! phase opens an RAII [`Scope`] tagged with an [`Op`] from the closed
//! inventory and with closed-form [`Counters`] (FLOPs and bytes derived
//! from the kernel's shape), and the recorder aggregates per-op counts,
//! totals, percentiles and retained samples into a [`ProfileSnapshot`].
//!
//! # Determinism contract
//!
//! Profiling is off by default and costs one relaxed atomic load per call
//! site when disabled. Timing flows *out* of the training loop into
//! reports — never back into results — so enabling the profiler leaves
//! training artifacts and detsan digests byte-identical (pinned by
//! integration tests in recsim-train). All wall-clock reads go through
//! [`clock::monotonic_nanos`], the one RV017-exempt library clock source;
//! RV019 conversely requires every inventory [`Op`] to have an
//! instrumentation point so kernels cannot escape measurement.
//!
//! # Example
//!
//! ```
//! use recsim_prof::{self as prof, Counters, Op};
//!
//! prof::set_enabled(true);
//! prof::reset();
//! {
//!     let _scope = prof::scope(Op::LinearFwd, Counters::linear_forward(32, 64, 16));
//!     // ... run the kernel ...
//! }
//! let snapshot = prof::drain();
//! prof::set_enabled(false);
//! let lin = snapshot.op(Op::LinearFwd);
//! assert_eq!(lin.count, 1);
//! assert_eq!(lin.flops, 2 * 32 * 64 * 16 + 32 * 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod counters;
pub mod ops;
pub mod record;
pub mod report;

pub use counters::Counters;
pub use ops::Op;
pub use record::{drain, enabled, reset, scope, set_enabled, Scope, SAMPLE_CAP};
pub use report::{OpProfile, ProfileSnapshot, Sample};
