//! The profiling recorder: a process-wide switch, per-op accumulators,
//! and the RAII scope that feeds them.
//!
//! The recorder follows the recsim-detsan recorder discipline: off by
//! default, one relaxed atomic load per call site when disabled, and a
//! single `Mutex`-protected global that instrumented code never observes —
//! timing flows *out* of the training loop into reports, never back into
//! results, so enabling the profiler cannot perturb artifacts (a property
//! the train-crate integration tests pin byte-for-byte).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::clock::monotonic_nanos;
use crate::counters::Counters;
use crate::ops::Op;
use crate::report::{OpProfile, ProfileSnapshot, Sample};

/// Per-op retained `(start, duration)` samples are capped at this many;
/// aggregate counters stay exact past the cap, and the overflow count is
/// reported so truncation is never silent.
pub const SAMPLE_CAP: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Vec<OpAccum>> = Mutex::new(Vec::new());

/// Running totals for one operator.
#[derive(Debug, Clone, Default)]
struct OpAccum {
    count: u64,
    total_ns: u64,
    flops: u64,
    bytes: u64,
    min_ns: u64,
    max_ns: u64,
    samples: Vec<Sample>,
    dropped_samples: u64,
}

/// Turns profiling on or off process-wide. Callers should [`reset`] before
/// a measured region; disabling does not clear accumulated state.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is on. Scopes check this at construction, so the
/// disabled cost is one relaxed load (plus the caller's shape arithmetic).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn registry() -> std::sync::MutexGuard<'static, Vec<OpAccum>> {
    let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    if reg.is_empty() {
        reg.resize_with(Op::ALL.len(), OpAccum::default);
    }
    reg
}

/// Clears all accumulated state (counts, totals, samples).
pub fn reset() {
    registry().fill_with(OpAccum::default);
}

/// Opens a timing scope for `op`, charging `counters` when it closes.
/// While profiling is disabled the returned guard is inert.
///
/// For kernels whose counts are only known afterwards (e.g. the unique-row
/// count of an embedding scatter), open with [`Counters::none`] and call
/// [`Scope::set_counters`] before the guard drops.
pub fn scope(op: Op, counters: Counters) -> Scope {
    Scope {
        op,
        counters,
        start_ns: enabled().then(monotonic_nanos),
    }
}

/// An open RAII timing scope; records on drop. Created by [`scope`].
#[derive(Debug)]
pub struct Scope {
    op: Op,
    counters: Counters,
    start_ns: Option<u64>,
}

impl Scope {
    /// Replaces the counters charged at close — for shapes (like scatter
    /// coalescing) only known once the kernel has run.
    pub fn set_counters(&mut self, counters: Counters) {
        self.counters = counters;
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        let Some(start_ns) = self.start_ns else {
            return;
        };
        let dur_ns = monotonic_nanos().saturating_sub(start_ns);
        let mut reg = registry();
        let acc = &mut reg[self.op.index()];
        acc.count += 1;
        acc.total_ns += dur_ns;
        acc.flops += self.counters.flops;
        acc.bytes += self.counters.bytes;
        acc.min_ns = if acc.count == 1 {
            dur_ns
        } else {
            acc.min_ns.min(dur_ns)
        };
        acc.max_ns = acc.max_ns.max(dur_ns);
        if acc.samples.len() < SAMPLE_CAP {
            acc.samples.push(Sample { start_ns, dur_ns });
        } else {
            acc.dropped_samples += 1;
        }
    }
}

/// Takes the accumulated profile, leaving the recorder empty. Percentiles
/// are computed over the retained samples ([`SAMPLE_CAP`] per op);
/// aggregate counters are exact regardless.
pub fn drain() -> ProfileSnapshot {
    let accums = {
        let mut reg = registry();
        std::mem::take(&mut *reg)
    };
    let ops = Op::ALL
        .into_iter()
        .zip(accums)
        .map(|(op, acc)| {
            let mut durations: Vec<u64> = acc.samples.iter().map(|s| s.dur_ns).collect();
            durations.sort_unstable();
            OpProfile {
                op,
                count: acc.count,
                total_ns: acc.total_ns,
                flops: acc.flops,
                bytes: acc.bytes,
                min_ns: acc.min_ns,
                max_ns: acc.max_ns,
                p50_ns: percentile(&durations, 0.50),
                p99_ns: percentile(&durations, 0.99),
                samples: acc.samples,
                dropped_samples: acc.dropped_samples,
            }
        })
        .collect();
    ProfileSnapshot { ops }
}

/// Nearest-rank percentile of an ascending-sorted duration list.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 51);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
    }

    // All global-state behavior lives in one test so parallel test threads
    // cannot race the process-wide recorder (same discipline as the detsan
    // recorder tests).
    #[test]
    fn recorder_roundtrip() {
        set_enabled(false);
        reset();
        {
            let _s = scope(Op::LinearFwd, Counters::new(100, 40));
        }
        let off = drain();
        assert!(
            off.ops.iter().all(|o| o.count == 0),
            "disabled profiler must not record"
        );

        set_enabled(true);
        reset();
        {
            let _s = scope(Op::LinearFwd, Counters::new(100, 40));
        }
        {
            let mut s = scope(Op::EmbScatter, Counters::none());
            s.set_counters(Counters::new(7, 8));
        }
        {
            let _outer = scope(Op::TrainStep, Counters::none());
            let _inner = scope(Op::LinearFwd, Counters::new(1, 2));
        }
        let snap = drain();
        set_enabled(false);

        let lin = snap.op(Op::LinearFwd);
        assert_eq!(lin.count, 2);
        assert_eq!(lin.flops, 101);
        assert_eq!(lin.bytes, 42);
        assert_eq!(lin.samples.len(), 2);
        assert!(lin.total_ns >= lin.min_ns && lin.max_ns <= lin.total_ns);
        assert!(lin.p50_ns <= lin.p99_ns && lin.p99_ns <= lin.max_ns);

        let emb = snap.op(Op::EmbScatter);
        assert_eq!((emb.count, emb.flops, emb.bytes), (1, 7, 8));

        let step = snap.op(Op::TrainStep);
        assert_eq!(step.count, 1);
        // The phase wraps the inner leaf, so its duration dominates it.
        assert!(step.total_ns >= snap.op(Op::LinearFwd).min_ns);

        // Drain cleared the registry.
        assert!(drain().ops.iter().all(|o| o.count == 0));
    }
}
