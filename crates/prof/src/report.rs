//! Drained profile data: per-op aggregates and the snapshot container.
//!
//! These are plain data — classification against hardware roofs and the
//! sim-vs-measured calibration join live in `recsim-core::profiling`,
//! which has access to the device models and the simulator.

use serde::{Deserialize, Serialize};

use crate::ops::Op;

/// One retained timing sample: when a scope opened (relative to the
/// process clock anchor) and how long it stayed open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// Scope open time, nanoseconds since the profiler clock anchor.
    pub start_ns: u64,
    /// Scope duration in nanoseconds.
    pub dur_ns: u64,
}

/// Aggregated measurements for one operator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpProfile {
    /// Which operator.
    pub op: Op,
    /// Closed scopes recorded.
    pub count: u64,
    /// Summed wall time over all scopes, nanoseconds (exact).
    pub total_ns: u64,
    /// Summed closed-form FLOPs (exact).
    pub flops: u64,
    /// Summed closed-form bytes moved (exact).
    pub bytes: u64,
    /// Fastest single scope, nanoseconds.
    pub min_ns: u64,
    /// Slowest single scope, nanoseconds.
    pub max_ns: u64,
    /// Median scope duration over retained samples.
    pub p50_ns: u64,
    /// 99th-percentile scope duration over retained samples.
    pub p99_ns: u64,
    /// Retained `(start, duration)` samples, in record order (capped).
    pub samples: Vec<Sample>,
    /// Scopes past the sample cap: aggregates include them, samples and
    /// percentiles do not.
    pub dropped_samples: u64,
}

impl OpProfile {
    /// Mean scope duration in nanoseconds (0 when nothing recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Achieved compute rate in FLOP/s over this op's measured time.
    pub fn achieved_flops_per_sec(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.flops as f64 / (self.total_ns as f64 * 1e-9)
        }
    }

    /// Achieved memory traffic in bytes/s over this op's measured time.
    pub fn achieved_bytes_per_sec(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.bytes as f64 / (self.total_ns as f64 * 1e-9)
        }
    }

    /// Arithmetic intensity in FLOP/byte; infinite when no bytes counted.
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }
}

/// A drained profile: one [`OpProfile`] per inventory entry, in
/// [`Op::ALL`] order (including zero-count ops).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileSnapshot {
    /// Per-op aggregates, indexed by [`Op::index`].
    pub ops: Vec<OpProfile>,
}

impl ProfileSnapshot {
    /// The profile of one operator.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was built with a foreign op list (never the
    /// case for [`crate::record::drain`] output).
    pub fn op(&self, op: Op) -> &OpProfile {
        &self.ops[op.index()]
    }

    /// Ops that recorded at least one scope, in report order.
    pub fn active_ops(&self) -> impl Iterator<Item = &OpProfile> {
        self.ops.iter().filter(|o| o.count > 0)
    }

    /// Summed time over leaf kernels (excludes phases, whose spans contain
    /// the leaves).
    pub fn leaf_total_ns(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| !o.op.is_phase())
            .map(|o| o.total_ns)
            .sum()
    }

    /// Summed time over loop phases (data generation + training steps +
    /// evaluation) — the measured loop wall time leaves are accounted
    /// against.
    pub fn phase_total_ns(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| o.op.is_phase())
            .map(|o| o.total_ns)
            .sum()
    }

    /// Loop time not attributed to any leaf kernel (glue: cache
    /// bookkeeping, gradient plumbing, allocator churn). Clamped at zero
    /// for profiles where leaves were recorded outside any phase.
    pub fn unattributed_ns(&self) -> u64 {
        self.phase_total_ns().saturating_sub(self.leaf_total_ns())
    }

    /// Total FLOPs across leaf kernels.
    pub fn total_flops(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| !o.op.is_phase())
            .map(|o| o.flops)
            .sum()
    }

    /// Total bytes across leaf kernels.
    pub fn total_bytes(&self) -> u64 {
        self.ops
            .iter()
            .filter(|o| !o.op.is_phase())
            .map(|o| o.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(op: Op, count: u64, total_ns: u64, flops: u64, bytes: u64) -> OpProfile {
        OpProfile {
            op,
            count,
            total_ns,
            flops,
            bytes,
            min_ns: 0,
            max_ns: 0,
            p50_ns: 0,
            p99_ns: 0,
            samples: Vec::new(),
            dropped_samples: 0,
        }
    }

    fn snapshot() -> ProfileSnapshot {
        let ops = Op::ALL
            .into_iter()
            .map(|op| match op {
                Op::LinearFwd => profile(op, 10, 600, 1_000, 500),
                Op::EmbGather => profile(op, 10, 300, 50, 800),
                Op::TrainStep => profile(op, 10, 1_500, 0, 0),
                Op::DataGen => profile(op, 10, 200, 0, 0),
                _ => profile(op, 0, 0, 0, 0),
            })
            .collect();
        ProfileSnapshot { ops }
    }

    #[test]
    fn totals_split_leaves_from_phases() {
        let s = snapshot();
        assert_eq!(s.leaf_total_ns(), 900);
        assert_eq!(s.phase_total_ns(), 1_700);
        assert_eq!(s.unattributed_ns(), 800);
        assert_eq!(s.total_flops(), 1_050);
        assert_eq!(s.total_bytes(), 1_300);
        assert_eq!(s.active_ops().count(), 4);
        assert_eq!(s.op(Op::LinearFwd).mean_ns(), 60);
    }

    #[test]
    fn rates_derive_from_measured_time() {
        let s = snapshot();
        let lin = s.op(Op::LinearFwd);
        // 1000 FLOPs over 600 ns.
        assert!((lin.achieved_flops_per_sec() - 1_000.0 / 600e-9).abs() < 1.0);
        assert!((lin.achieved_bytes_per_sec() - 500.0 / 600e-9).abs() < 1.0);
        assert!((lin.intensity() - 2.0).abs() < 1e-12);
        assert_eq!(s.op(Op::TrainStep).intensity(), f64::INFINITY);
        assert_eq!(s.op(Op::LossBce).mean_ns(), 0);
        assert_eq!(s.op(Op::LossBce).achieved_flops_per_sec(), 0.0);
    }

    #[test]
    fn snapshot_serializes_with_op_ids() {
        let json = serde_json::to_string(&snapshot()).unwrap();
        assert!(json.contains("\"ops\""));
        assert!(json.contains("LinearFwd"));
        assert!(json.contains("\"total_ns\""));
    }
}
