//! Cross-crate integration scenarios: the workflows a downstream user of
//! the library would actually run, exercised end-to-end through the facade.

use recsim::prelude::*;
use recsim::sim::CostKnobs;

/// The M3 story, end to end: generate the model, observe that it cannot be
/// placed on Big Basin's HBM, fall back to remote parameter servers, and
/// confirm the Zion system-memory port wins.
#[test]
fn m3_capacity_story() {
    let m3 = production_model(ProductionModelId::M3);
    let bb = Platform::big_basin(Bytes::from_gib(32));

    // HBM placement must fail on capacity.
    let gpu_mem = Placement::plan(
        &m3,
        &bb,
        PlacementStrategy::GpuMemory(PartitionScheme::RowWise),
        2.0,
    );
    assert!(
        gpu_mem.is_err(),
        "M3's hundreds of GBs cannot fit 256 GiB HBM"
    );

    // Remote placement works but is slow relative to the CPU fleet.
    let remote = GpuTrainingSim::new(&m3, &bb, PlacementStrategy::RemoteCpu { servers: 8 }, 800)
        .expect("8 x 256 GB PS hold M3")
        .run();
    let cpu = CpuTrainingSim::new(
        &m3,
        CpuClusterSetup {
            trainers: 8,
            dense_ps: 4,
            sparse_ps: 4,
            hogwild_threads: 4,
            batch_per_thread: 200,
            sync_period: 16,
        },
    )
    .expect("valid setup")
    .run();
    assert!(
        remote.throughput() < cpu.throughput(),
        "remote-placement Big Basin ({:.0}) must lose to the CPU fleet ({:.0})",
        remote.throughput(),
        cpu.throughput()
    );

    // Zion's 2 TB system memory recovers the throughput.
    let zion = GpuTrainingSim::new(
        &m3,
        &Platform::zion_prototype(),
        PlacementStrategy::SystemMemory,
        1600,
    )
    .expect("2 TB holds M3")
    .run();
    assert!(
        zion.throughput() > cpu.throughput(),
        "Zion ({:.0}) must beat the CPU fleet ({:.0})",
        zion.throughput(),
        cpu.throughput()
    );
}

/// A full train-then-measure loop: the same ModelConfig drives both the
/// real numerics and the simulator, and both views are consistent (the
/// model learns; the simulator prices it).
#[test]
fn shared_config_drives_numerics_and_simulation() {
    let config = ModelConfig::test_suite(16, 4, 1_000, &[32, 16]);

    // Simulated throughput exists and embedding traffic matches geometry.
    let report = GpuTrainingSim::new(
        &config,
        &Platform::big_basin(Bytes::from_gib(16)),
        PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
        512,
    )
    .expect("tiny model fits")
    .run();
    assert!(report.throughput() > 0.0);

    // Real training on the same config converges below base-rate NE.
    let run = TrainRun::new(
        &config,
        TrainerConfig {
            batch_size: 64,
            train_examples: 16_000,
            eval_examples: 4_000,
            learning_rate: 0.05,
            warmup_steps: 10,
            adagrad: true,
            seed: 5,
        },
    )
    .execute();
    assert!(run.final_ne() < 1.0, "NE {}", run.final_ne());
}

/// Knob overrides flow through: disabling every GPU-hostile mechanism must
/// make the simulated GPU strictly faster.
#[test]
fn cost_knob_overrides_compose() {
    let config = ModelConfig::test_suite(256, 16, 1_000_000, &[512, 512, 512]);
    let bb = Platform::big_basin(Bytes::from_gib(32));
    let strategy = PlacementStrategy::GpuMemory(PartitionScheme::TableWise);
    let base = GpuTrainingSim::new(&config, &bb, strategy, 1600)
        .expect("fits")
        .run();
    let knobs = CostKnobs {
        gemm_half_efficiency_flops: 1.0, // near-peak GEMMs
        gpu_scatter_efficiency: 1.0,     // free atomics
        ..CostKnobs::default()
    };
    let tuned = GpuTrainingSim::new(&config, &bb.without_kernel_overhead(), strategy, 1600)
        .expect("fits")
        .with_knobs(knobs)
        .expect("valid knobs")
        .run();
    assert!(
        tuned.throughput() > base.throughput() * 1.5,
        "idealized GPU {:.0} should far exceed modeled GPU {:.0}",
        tuned.throughput(),
        base.throughput()
    );
}

/// EASGD multi-worker training through the facade still learns.
#[test]
fn easgd_workers_learn_through_facade() {
    use recsim::train::parallel::{easgd_train, EasgdConfig};
    let config = ModelConfig::test_suite(8, 2, 200, &[16]);
    let outcome = easgd_train(&config, EasgdConfig::quick_test(3));
    let ne = outcome.evaluate_ne(&config, 9999, 3000);
    assert!(ne < 1.0, "center model NE {ne}");
}

/// The design-space sweep helpers produce monotone costs along each axis.
#[test]
fn geometry_monotonicity_across_the_design_space() {
    use recsim::core::design_space::TestSuite;
    let suite = TestSuite::default();
    let mut last_flops = 0;
    for dense in TestSuite::dense_axis() {
        let m = suite.model(dense, 16);
        assert!(m.forward_flops_per_example() > last_flops);
        last_flops = m.forward_flops_per_example();
    }
    let mut last_bytes = 0;
    for sparse in TestSuite::sparse_axis() {
        let m = suite.model(256, sparse);
        assert!(m.embedding_read_bytes_per_example() > last_bytes);
        last_bytes = m.embedding_read_bytes_per_example();
    }
}
