//! Golden tests for the tracing/attribution surface: every simulator's
//! Chrome trace must be valid JSON with the expected event shapes (so
//! Perfetto loads it), and every report's attribution must repartition the
//! reported iteration time.

use recsim::prelude::*;
use recsim::trace::text_timeline;
use serde_json::Value;

fn gpu_sim() -> GpuTrainingSim {
    let config = ModelConfig::test_suite(256, 16, 100_000, &[512, 512, 512]);
    let platform = Platform::big_basin(Bytes::from_gib(32));
    GpuTrainingSim::new(
        &config,
        &platform,
        PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
        1600,
    )
    .expect("test-suite model fits Big Basin")
}

fn cpu_sim() -> CpuTrainingSim {
    let config = ModelConfig::test_suite(256, 16, 100_000, &[512, 512, 512]);
    CpuTrainingSim::new(
        &config,
        CpuClusterSetup {
            trainers: 2,
            dense_ps: 1,
            sparse_ps: 2,
            hogwild_threads: 2,
            batch_per_thread: 100,
            sync_period: 16,
        },
    )
    .expect("valid CPU cluster setup")
}

fn scaleout_sim() -> ScaleOutSim {
    let config = ModelConfig::test_suite(256, 16, 1_000_000, &[512, 512, 512]);
    ScaleOutSim::new(&config, 2, 1600).expect("two Big Basins hold the test suite")
}

/// Parses the exported JSON and checks the trace-event invariants Perfetto
/// relies on: a `traceEvents` array whose entries carry `ph`/`ts`/`pid`,
/// with `X` spans adding `dur` and `cat`, plus per-track `M` metadata.
fn assert_chrome_trace_well_formed(json: &str, label: &str) {
    let value: Value =
        serde_json::from_str(json).unwrap_or_else(|e| panic!("{label}: invalid JSON: {e}"));
    let events = value
        .get("traceEvents")
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("{label}: missing traceEvents array"));
    assert!(!events.is_empty(), "{label}: empty trace");

    let mut spans = 0usize;
    let mut metadata = 0usize;
    for event in events {
        let ph = event
            .get("ph")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("{label}: event without ph: {event}"));
        assert!(event.get("pid").is_some(), "{label}: event without pid");
        match ph {
            "X" => {
                spans += 1;
                let dur = event.get("dur").and_then(Value::as_f64);
                assert!(
                    dur.is_some_and(|d| d >= 0.0),
                    "{label}: X event needs non-negative dur: {event}"
                );
                assert!(
                    event.get("ts").and_then(Value::as_f64).is_some(),
                    "{label}: X event needs numeric ts: {event}"
                );
                let cat = event
                    .get("cat")
                    .and_then(Value::as_str)
                    .unwrap_or_else(|| panic!("{label}: X event without cat: {event}"));
                assert!(
                    TaskCategory::from_label(cat).is_some(),
                    "{label}: unknown category {cat:?}"
                );
            }
            "M" => metadata += 1,
            "i" | "C" => {
                assert!(
                    event.get("ts").and_then(Value::as_f64).is_some(),
                    "{label}: {ph} event needs numeric ts: {event}"
                );
            }
            other => panic!("{label}: unexpected phase {other:?}"),
        }
    }
    assert!(spans > 0, "{label}: no spans exported");
    assert!(metadata > 0, "{label}: no track-name metadata exported");
}

/// The report's attribution must sum to the reported iteration time (the
/// breakdown is the iteration, repartitioned) and use only known labels.
fn assert_attribution_partitions(report: &SimReport) {
    let total = report.iteration_time().as_secs();
    assert!(total > 0.0);
    let attribution = report.attribution();
    assert!(!attribution.is_empty(), "report carries no attribution");
    let mut sum = 0.0;
    for (label, d) in attribution {
        assert!(
            TaskCategory::from_label(label).is_some(),
            "unknown attribution label {label:?}"
        );
        assert!(d.as_secs() >= 0.0);
        sum += d.as_secs();
    }
    let rel = (sum - total).abs() / total;
    assert!(
        rel < 1e-6,
        "attribution sums to {sum:.3e}, iteration time {total:.3e} (rel err {rel:.3e})"
    );
}

#[test]
fn gpu_trace_and_attribution_golden() {
    let sim = gpu_sim();
    assert_chrome_trace_well_formed(&chrome_trace(&sim.trace()), "gpu");
    assert_attribution_partitions(&sim.run());
    let cp = sim.critical_path(5);
    assert!(cp.makespan > 0.0);
    assert!((cp.attributed_total() - cp.makespan).abs() <= 1e-9 * cp.makespan);
}

#[test]
fn cpu_trace_and_attribution_golden() {
    let sim = cpu_sim();
    assert_chrome_trace_well_formed(&chrome_trace(&sim.trace()), "cpu");
    assert_attribution_partitions(&sim.run());
    let cp = sim.critical_path(5);
    assert!(cp.makespan > 0.0);
    assert!((cp.attributed_total() - cp.makespan).abs() <= 1e-9 * cp.makespan);
}

#[test]
fn scaleout_trace_and_attribution_golden() {
    let sim = scaleout_sim();
    assert_chrome_trace_well_formed(&chrome_trace(&sim.trace()), "scaleout");
    assert_attribution_partitions(&sim.run());
    let cp = sim.critical_path(5);
    assert!(cp.makespan > 0.0);
    assert!((cp.attributed_total() - cp.makespan).abs() <= 1e-9 * cp.makespan);
}

#[test]
fn text_timeline_names_every_track() {
    let sim = gpu_sim();
    let trace = sim.trace();
    let text = text_timeline(&trace);
    for track in trace.tracks() {
        assert!(text.contains(track), "timeline missing track {track:?}");
    }
}

#[test]
fn serde_round_trip_preserves_attribution() {
    let report = gpu_sim().run();
    let json = serde_json::to_string(&report).expect("report serializes");
    let back: SimReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(report.attribution(), back.attribution());
    assert_eq!(report.throughput(), back.throughput());
}
