//! End-to-end integration: every experiment driver runs at reduced scale
//! and every qualitative claim the paper makes must reproduce. A regression
//! in any crate (data statistics, cost model, placement logic, training
//! numerics) surfaces here as a failed claim.

use recsim::prelude::*;

#[test]
fn every_registered_experiment_reproduces_its_claims() {
    let mut failures = Vec::new();
    for (id, driver) in experiments::registry() {
        let out = driver(Effort::Quick);
        assert_eq!(out.id, id, "registry id must match the output id");
        assert!(!out.claims.is_empty(), "{id} must check at least one claim");
        for claim in out.failed_claims() {
            failures.push(format!(
                "{id}: {} (observed: {})",
                claim.statement, claim.observed
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "paper claims failed to reproduce:\n{}",
        failures.join("\n")
    );
}

#[test]
fn experiment_outputs_serialize_round_trip() {
    let out = experiments::table1::run(Effort::Quick);
    let json = serde_json::to_string(&out).expect("serialize");
    let back: ExperimentOutput = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(out, back);
}

#[test]
fn registry_covers_every_paper_artifact() {
    let ids: Vec<&str> = experiments::registry().iter().map(|(id, _)| *id).collect();
    for expected in [
        "table1",
        "table2",
        "table3",
        "fig01",
        "fig02",
        "fig05",
        "fig06",
        "fig07",
        "fig09",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "automl",
        "autoshard",
        "faults",
        "locality",
        "scaleout",
        "readers",
        "compression",
        "serve",
        "rowshard",
    ] {
        assert!(ids.contains(&expected), "missing driver for {expected}");
    }
    assert_eq!(ids.len(), 24);
}
