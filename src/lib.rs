//! `recsim` — a training-efficiency laboratory for deep learning
//! recommendation models.
//!
//! This facade crate re-exports the full workspace, which reproduces
//! *Understanding Training Efficiency of Deep Learning Recommendation
//! Models at Scale* (Acun et al., HPCA 2021) as a library:
//!
//! * [`data`] — synthetic recommendation workloads: the model configuration
//!   space, distributions, a CTR generator with a planted teacher,
//!   production-model stand-ins and the fleet sampler,
//! * [`detsan`] — the determinism sanitizer runtime: canonical state
//!   digests and per-stage divergence localization behind
//!   `recsim verify --detsan`,
//! * [`model`] — a from-scratch DLRM that really trains (tensors, MLPs,
//!   embedding bags, interactions, losses, optimizers),
//! * [`hw`] — hardware platform models (dual-socket CPU, Big Basin, Zion),
//! * [`placement`] — the four embedding-table placement strategies,
//! * [`sim`] — the discrete-event training-pipeline simulator,
//! * [`shard`] — cost-model-driven automatic embedding placement: three
//!   solvers searching for the placement that minimizes predicted
//!   iteration time (`recsim shard <setup>`),
//! * [`fault`] — deterministic fault injection and recovery: counter-keyed
//!   fault schedules, slowdown perturbations for the DES, and the
//!   checkpoint / elastic-shrink / fail-stop goodput policies
//!   (`recsim faults <setup>`),
//! * [`trace`] — spans/counters tracing, Chrome/Perfetto export, and
//!   critical-path attribution of the makespan to task categories,
//! * [`prof`] — the hot-path kernel profiler: RAII timing scopes with
//!   closed-form FLOP/byte counters on every model operator, joined with
//!   the hardware roofline and the simulator's attribution by
//!   `recsim prof <driver>`,
//! * [`serve`] — the online inference serving tier: open-loop request
//!   generation, dynamic micro-batching, embedding caches priced by the
//!   memory hierarchy, and tail-latency SLO reporting — including running
//!   the schedule through a really-trained model (`recsim serve <setup>`),
//! * [`train`] — real training loops, NE metrics, batch scaling, AutoML,
//!   EASGD/Hogwild,
//! * [`metrics`] — histograms, KDE, quantiles, report rendering,
//! * [`core`] — the experiment drivers regenerating every paper table and
//!   figure,
//! * [`pool`] — the dependency-free scoped work-stealing thread pool behind
//!   every parallel sweep (`RECSIM_THREADS` caps its width),
//! * [`verify`] — the static-analysis and config-validation layer: RV0xx
//!   diagnostics, the [`verify::Validate`] trait, and the workspace lint
//!   engine (`cargo run -p recsim-verify -- lint`).
//!
//! # Quickstart
//!
//! ```
//! use recsim::prelude::*;
//!
//! // How fast does a mid-size recommendation model train on Big Basin?
//! let config = ModelConfig::test_suite(256, 16, 100_000, &[512, 512, 512]);
//! let platform = Platform::big_basin(Bytes::from_gib(32));
//! let report = GpuTrainingSim::new(
//!     &config, &platform,
//!     PlacementStrategy::GpuMemory(PartitionScheme::TableWise), 1600,
//! )?.run();
//! assert!(report.throughput() > 0.0);
//!
//! // And does a (smaller) model actually learn on the synthetic data?
//! let small = ModelConfig::test_suite(8, 2, 100, &[16]);
//! let run = TrainRun::new(&small, TrainerConfig::quick_test()).execute();
//! assert!(run.final_ne() < 1.05);
//! # Ok::<(), recsim::sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use recsim_core as core;
pub use recsim_data as data;
pub use recsim_detsan as detsan;
pub use recsim_fault as fault;
pub use recsim_hw as hw;
pub use recsim_metrics as metrics;
pub use recsim_model as model;
pub use recsim_placement as placement;
pub use recsim_pool as pool;
pub use recsim_prof as prof;
pub use recsim_serve as serve;
pub use recsim_shard as shard;
pub use recsim_sim as sim;
pub use recsim_trace as trace;
pub use recsim_train as train;
pub use recsim_verify as verify;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use recsim_core::profiling::{profile_driver, ProfileReport, RooflineBound};
    pub use recsim_core::{experiments, Effort, ExperimentOutput};
    pub use recsim_data::production::{production_model, ProductionModelId};
    pub use recsim_data::schema::{Interaction, ModelConfig, SparseFeatureSpec};
    pub use recsim_data::trace::{AccessTrace, ReuseProfile};
    pub use recsim_data::CtrGenerator;
    pub use recsim_fault::{
        policy_by_name, CheckpointRestart, ElasticShrink, FailStop, FaultConfig, FaultContext,
        FaultError, FaultSchedule, GoodputReport, RecoveryPolicy, SlowdownField, POLICY_NAMES,
    };
    pub use recsim_hw::units::{Bandwidth, Bytes, Duration, FlopRate, Flops, Power};
    pub use recsim_hw::{Platform, PlatformKind, ScmDevice};
    pub use recsim_model::{DlrmModel, Matrix};
    pub use recsim_placement::{PartitionScheme, Placement, PlacementStrategy};
    pub use recsim_serve::{
        execute_schedule, simulate, BatchPolicy, CachePolicy, EmbeddingCache, LatencyModel,
        ModelPush, ServeConfig, ServeReport, Spike, WorkloadConfig,
    };
    pub use recsim_shard::{
        best_static, per_table_plan, per_table_plan_with_caps, solver_by_name, static_plans,
        GreedySharder, PackSharder, RefineSharder, RowShardError, RowShardPlan, RowShardSolver,
        RowSplit, ShardError, ShardPlan, Sharder,
    };
    pub use recsim_sim::readers::ReaderModel;
    pub use recsim_sim::scaleout::ScaleOutSim;
    pub use recsim_sim::{CpuClusterSetup, CpuTrainingSim, GpuTrainingSim, SimError, SimReport};
    pub use recsim_trace::{
        attribution_table, chrome_trace, critical_path, CriticalPathReport, NoopTracer,
        TaskCategory, Trace, TraceRecorder, Tracer,
    };
    pub use recsim_train::trainer::{TrainRun, TrainerConfig};
    pub use recsim_train::{AutoTuner, BatchScalingStudy};
    pub use recsim_verify::{Code, Diagnostic, Severity, Validate, ValidationError};
}
