//! The `recsim` command-line interface.
//!
//! ```text
//! recsim experiments [--quick] [id ...]   regenerate paper artifacts
//! recsim run --all [--quick] [--threads N]  parallel run of every driver
//! recsim simulate [options]               price one training setup
//! recsim shard <setup> [options]          auto-place embeddings, compare
//! recsim faults <setup> [options]         goodput under injected failures
//! recsim trace <setup> [options]          export a timeline + attribution
//! recsim prof <driver> [options]          profile the real hot path, calibrate
//! recsim train [options]                  really train a model, report NE
//! recsim serve <setup> [options]          serve a trained model under load
//! recsim models                           describe the M1/M2/M3 stand-ins
//! recsim verify                           validate presets, list RV0xx codes
//! recsim verify --detsan <id|all>         localize nondeterminism per stage
//! recsim help
//! ```

use recsim::prelude::*;
use recsim::sim::scaleout::min_nodes;
use recsim::sim::CostKnobs;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("experiments") => cmd_experiments(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("shard") => cmd_shard(&args[1..]),
        Some("faults") => cmd_faults(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("prof") => cmd_prof(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("models") => cmd_models(),
        Some("verify") => cmd_verify(&args[1..]),
        Some("help") | None => {
            print_help();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`; try `recsim help`");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "recsim — training-efficiency laboratory for recommendation models\n\
         \n\
         USAGE:\n\
         \x20 recsim experiments [--quick] [id ...]   run paper-artifact drivers\n\
         \x20 recsim run --all [--quick] [--threads N]  run every driver in parallel\n\
         \x20                                         (RECSIM_THREADS also honored;\n\
         \x20                                         RECSIM_RESULTS_DIR persists JSON)\n\
         \x20 recsim simulate [options]               simulate one training setup\n\
         \x20 recsim shard <setup> [options]          auto-place embedding tables\n\
         \x20 recsim faults <setup> [options]         goodput under injected failures\n\
         \x20 recsim trace <setup> [options]          export a timeline + attribution\n\
         \x20 recsim prof <driver> [options]          run a driver with the hot-path\n\
         \x20                                         profiler armed; report per-op\n\
         \x20                                         time/FLOP/byte shares, roofline\n\
         \x20                                         bounds and sim-vs-measured\n\
         \x20                                         calibration (DESIGN.md §12)\n\
         \x20 recsim train [options]                  train for real, report NE\n\
         \x20 recsim serve <setup> [options]          price a serving scenario in\n\
         \x20                                         virtual time, then train a\n\
         \x20                                         model and score the exact\n\
         \x20                                         schedule through it\n\
         \x20 recsim models                           describe M1/M2/M3 stand-ins\n\
         \x20 recsim verify                           validate presets, list RV0xx codes\n\
         \x20 recsim verify --detsan <id|all>         run each driver at 1 vs N threads\n\
         \x20   [--quick] [--threads N]               and report the first divergent\n\
         \x20                                         stage + sweep point (DESIGN.md §11;\n\
         \x20                                         RECSIM_RESULTS_DIR writes -t1/-tN\n\
         \x20                                         artifact trees for CI diffing)\n\
         \n\
         SIMULATE OPTIONS (defaults in brackets):\n\
         \x20 --platform bb|bb16|zion|cpu [bb]   --placement gpu|rowwise|replicated|\n\
         \x20                                      system|remote|hybrid [gpu]\n\
         \x20 --dense N [256]   --sparse N [16]   --hash N [100000]\n\
         \x20 --mlp WxL [512x3] --batch N [1600]  --nodes N (multi-node scale-out)\n\
         \x20 --trace FILE (write a chrome://tracing timeline of one iteration)\n\
         \x20 --attribute (print the critical-path attribution breakdown)\n\
         \x20 --describe (print the table-by-table placement map)\n\
         \n\
         SHARD: recsim shard bb|bb16|zion\n\
         \x20 --solver greedy|pack|refine [refine]  --model m1|m2|m3 (production\n\
         \x20 stand-in instead of the simulate model flags)  --batch N [1600]\n\
         \x20 --rows (per-row hot/cold split over HBM/DDR/SCM)  --zipf S [1.1]\n\
         \x20 --hbm-gib N [8]  --ddr-gib N [host capacity]  --scm pmem|nvme [pmem] (with --rows)\n\
         \n\
         FAULTS: recsim faults bb|bb16|scaleout\n\
         \x20 --policy checkpoint|elastic|fail-stop|all [all]  --mtbf SECONDS [21600]\n\
         \x20 --interval SECONDS (checkpoint interval; default: Young's optimum)\n\
         \x20 --seed N [42]  --horizon SECONDS [86400]  --nodes N (scaleout only)\n\
         \x20 plus the simulate model flags and --model m1|m2|m3\n\
         \n\
         TRACE: recsim trace bb|bb16|zion|cpu|scaleout\n\
         \x20 --format chrome|text|summary [chrome]  --out FILE (default: stdout)\n\
         \x20 plus the simulate model/placement/batch/nodes flags\n\
         \n\
         PROF: recsim prof <driver> (any experiment id; automl and fig15 run\n\
         \x20 the real training loop)  [--quick]\n\
         \x20 --format summary|chrome|json [summary]  --out FILE (default: stdout)\n\
         \n\
         TRAIN OPTIONS:\n\
         \x20 --batch N [200]  --examples N [40000]  --lr F [0.04]  --seed N [31]\n\
         \x20 --dense N [16]   --sparse N [4]        --hash N [2000]\n\
         \n\
         SERVE: recsim serve steady|spike|push\n\
         \x20 --rps F [4000]  --duration SECONDS [2]  --seed N [7]\n\
         \x20 --policy lru|lfu|static-hot [lru]  --capacity ROWS [1024]\n\
         \x20 --max-batch N [16]  --max-delay-us N [2000]  --slo-ms F [5]\n\
         \x20 --multiplier F [6] (spike)  --stall-us N [20000] (push)\n\
         \x20 plus the train model flags (--dense/--sparse/--hash/--mlp)"
    );
}

fn parse_flags(args: &[String]) -> (HashMap<String, String>, Vec<String>) {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if let Some(v) = it.peek() {
                if !v.starts_with("--") {
                    flags.insert(name.to_string(), it.next().expect("peeked").clone());
                    continue;
                }
            }
            flags.insert(name.to_string(), "true".to_string());
        } else {
            positional.push(a.clone());
        }
    }
    (flags, positional)
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build_model(flags: &HashMap<String, String>) -> ModelConfig {
    let dense = get(flags, "dense", 256usize);
    let sparse = get(flags, "sparse", 16usize);
    let hash = get(flags, "hash", 100_000u64);
    let mlp_spec = flags
        .get("mlp")
        .cloned()
        .unwrap_or_else(|| "512x3".to_string());
    let (w, l) = mlp_spec
        .split_once('x')
        .and_then(|(w, l)| Some((w.parse().ok()?, l.parse().ok()?)))
        .unwrap_or((512usize, 3usize));
    ModelConfig::test_suite(dense, sparse, hash, &vec![w; l])
}

fn cmd_experiments(args: &[String]) -> ExitCode {
    let (flags, ids) = parse_flags(args);
    let effort = if flags.contains_key("quick") {
        Effort::Quick
    } else {
        Effort::Full
    };
    let registry = experiments::registry();
    let selected: Vec<_> = if ids.is_empty() {
        registry
    } else {
        registry
            .into_iter()
            .filter(|(id, _)| ids.iter().any(|want| want == id))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no experiments matched; known ids:");
        for (id, _) in experiments::registry() {
            eprintln!("  {id}");
        }
        return ExitCode::FAILURE;
    }
    let mut failed = 0usize;
    for (_, driver) in selected {
        let out = driver(effort);
        print!("{}", out.render());
        println!();
        failed += out.failed_claims().len();
    }
    if failed > 0 {
        eprintln!("{failed} claim(s) failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `recsim run --all` — run every experiment driver through the
/// `recsim-pool` parallel sweep engine. `--threads N` overrides the pool
/// width (equivalent to setting `RECSIM_THREADS=N`); outputs are identical
/// to the serial `recsim experiments` at any thread count.
fn cmd_run(args: &[String]) -> ExitCode {
    let (flags, positional) = parse_flags(args);
    if !flags.contains_key("all") || !positional.is_empty() {
        eprintln!("usage: recsim run --all [--quick] [--threads N]");
        return ExitCode::FAILURE;
    }
    let effort = if flags.contains_key("quick") {
        Effort::Quick
    } else {
        Effort::Full
    };
    if let Some(n) = flags.get("threads") {
        match n.parse::<usize>() {
            Ok(n) if n > 0 => recsim::pool::set_thread_override(Some(n)),
            _ => {
                eprintln!("--threads expects a positive integer, got `{n}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let threads = recsim::pool::thread_count();
    let start = std::time::Instant::now();
    // Same fan-out as `experiments::run_all`, with a per-driver wall clock
    // measured inside each (otherwise pure) sweep item. Timing rides along
    // in the fold result; the driver outputs stay byte-identical at any
    // thread count.
    let entries = experiments::registry();
    let timed = recsim::core::sweep(&entries, |&(id, driver)| {
        let t = std::time::Instant::now();
        let out = driver(effort);
        (id, out, t.elapsed().as_secs_f64())
    });
    let elapsed = start.elapsed().as_secs_f64();
    let outputs: Vec<(&str, ExperimentOutput)> = timed
        .iter()
        .map(|(id, out, _)| (*id, out.clone()))
        .collect();
    let mut failed = 0usize;
    for (_, out) in &outputs {
        print!("{}", out.render());
        println!();
        failed += out.failed_claims().len();
    }
    // Per-driver wall-clock table (slowest first). Parallel fan-out means
    // the per-driver times sum past the elapsed wall time.
    let mut timings: Vec<(&str, f64)> = timed.iter().map(|(id, _, secs)| (*id, *secs)).collect();
    timings.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let mut timing_table = recsim::metrics::Table::new(vec!["driver", "wall s", "share"]);
    let timed_total: f64 = timings.iter().map(|(_, s)| s).sum();
    for (id, secs) in &timings {
        timing_table.push_row(vec![
            (*id).to_string(),
            format!("{secs:.3}"),
            format!(
                "{:.1}%",
                if timed_total > 0.0 {
                    secs / timed_total * 100.0
                } else {
                    0.0
                }
            ),
        ]);
    }
    println!("per-driver wall clock:\n{timing_table}");
    // With RECSIM_RESULTS_DIR set, persist one JSON artifact per driver —
    // the CI determinism job diffs these across thread counts — plus the
    // (run-specific, never diffed) wall-clock table as timings.json.
    if let Some(dir) = std::env::var_os("RECSIM_RESULTS_DIR") {
        let dir = std::path::PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for (id, out) in &outputs {
            let json = match serde_json::to_string(out) {
                Ok(json) => json,
                Err(e) => {
                    eprintln!("cannot serialize `{id}`: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let path = dir.join(format!("{id}.json"));
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        let rows: Vec<String> = timings
            .iter()
            .map(|(id, secs)| format!("    {{\"driver\": \"{id}\", \"wall_secs\": {secs:.6}}}"))
            .collect();
        let timings_json = format!(
            "{{\n  \"schema\": \"recsim-run-timings-v1\",\n  \"threads\": {threads},\n  \
             \"total_wall_secs\": {elapsed:.6},\n  \"drivers\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        let path = dir.join("timings.json");
        if let Err(e) = std::fs::write(&path, timings_json) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "({} artifact(s) + timings.json written to {})",
            outputs.len(),
            dir.display()
        );
    }
    println!(
        "ran {} driver(s) across {threads} thread(s) in {elapsed:.2}s",
        outputs.len()
    );
    if failed > 0 {
        eprintln!("{failed} claim(s) failed");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_simulate(args: &[String]) -> ExitCode {
    let (flags, _) = parse_flags(args);
    let model = build_model(&flags);
    let batch = get(&flags, "batch", 1600u64);

    // Multi-node scale-out mode.
    if let Some(nodes) = flags.get("nodes").and_then(|v| v.parse::<u32>().ok()) {
        return match ScaleOutSim::new(&model, nodes, batch) {
            Ok(sim) => {
                print_report(&sim.run());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("scale-out error: {e} (min nodes = {})", min_nodes(&model));
                ExitCode::FAILURE
            }
        };
    }

    let platform_name = flags
        .get("platform")
        .cloned()
        .unwrap_or_else(|| "bb".to_string());
    if platform_name == "cpu" {
        return match CpuTrainingSim::new(&model, CpuClusterSetup::single_trainer(batch.min(800))) {
            Ok(sim) => {
                print_report(&sim.run());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("invalid CPU setup: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let platform = match platform_name.as_str() {
        "bb" => Platform::big_basin(Bytes::from_gib(32)),
        "bb16" => Platform::big_basin(Bytes::from_gib(16)),
        "zion" => Platform::zion_prototype(),
        other => {
            eprintln!("unknown platform `{other}` (bb, bb16, zion, cpu)");
            return ExitCode::FAILURE;
        }
    };
    let Some(placement) = parse_placement(&flags) else {
        return ExitCode::FAILURE;
    };
    match GpuTrainingSim::new(&model, &platform, placement, batch) {
        Ok(sim) => {
            let report = sim.run();
            print_report(&report);
            if flags.contains_key("attribute") {
                print_attribution(&report);
            }
            if flags.contains_key("describe") {
                print!("{}", sim.placement().describe());
            }
            if let Some(path) = flags.get("trace") {
                match std::fs::write(path, chrome_trace(&sim.trace())) {
                    Ok(()) => println!(
                        "timeline written to {path} (open in chrome://tracing or Perfetto)"
                    ),
                    Err(e) => eprintln!("could not write trace: {e}"),
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot simulate this setup: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_placement(flags: &HashMap<String, String>) -> Option<PlacementStrategy> {
    match flags.get("placement").map_or("gpu", String::as_str) {
        "gpu" => Some(PlacementStrategy::GpuMemory(PartitionScheme::TableWise)),
        "rowwise" => Some(PlacementStrategy::GpuMemory(PartitionScheme::RowWise)),
        "replicated" => Some(PlacementStrategy::GpuMemory(PartitionScheme::Replicated)),
        "system" => Some(PlacementStrategy::SystemMemory),
        "remote" => Some(PlacementStrategy::RemoteCpu { servers: 8 }),
        "hybrid" => Some(PlacementStrategy::Hybrid),
        other => {
            eprintln!("unknown placement `{other}`");
            None
        }
    }
}

/// `recsim shard <setup>` — search for the embedding placement minimizing
/// predicted iteration time, print the plan, and compare it against the
/// best static Figure-8 strategy on the same inputs. Setups are the GPU
/// platforms (`bb`, `bb16`, `zion`); `--model m1|m2|m3` swaps in a
/// production stand-in, otherwise the simulate model flags apply.
fn cmd_shard(args: &[String]) -> ExitCode {
    let (flags, positional) = parse_flags(args);
    let setup = positional.first().map_or("bb", String::as_str);
    let platform = match setup {
        "bb" => Platform::big_basin(Bytes::from_gib(32)),
        "bb16" => Platform::big_basin(Bytes::from_gib(16)),
        "zion" => Platform::zion_prototype(),
        other => {
            eprintln!("unknown setup `{other}` (bb, bb16, zion — auto-sharding needs GPUs)");
            return ExitCode::FAILURE;
        }
    };
    let model = match flags.get("model").map(String::as_str) {
        Some("m1") => production_model(ProductionModelId::M1),
        Some("m2") => production_model(ProductionModelId::M2),
        Some("m3") => production_model(ProductionModelId::M3),
        Some(other) => {
            eprintln!("unknown model `{other}` (m1, m2, m3)");
            return ExitCode::FAILURE;
        }
        None => build_model(&flags),
    };
    let batch = get(&flags, "batch", 1600u64);
    if flags.contains_key("rows") {
        return cmd_shard_rows(&flags, &model, &platform, batch);
    }
    let solver_name = flags.get("solver").map_or("refine", String::as_str);
    let Some(solver) = solver_by_name(solver_name) else {
        eprintln!("unknown solver `{solver_name}` (greedy, pack, refine)");
        return ExitCode::FAILURE;
    };
    match solver.shard(&model, &platform, batch) {
        Ok(plan) => {
            print!("{}", plan.describe());
            match best_static(&model, &platform, batch) {
                Some(best) => {
                    let auto_ms = plan.iteration_time().as_secs() * 1e3;
                    let static_ms = best.iteration_time().as_secs() * 1e3;
                    println!(
                        "best static (`{}`): {static_ms:.3} ms — auto plan is {:+.1}%",
                        best.solver(),
                        (auto_ms / static_ms - 1.0) * 100.0
                    );
                }
                None => println!("no static Figure-8 strategy places this model"),
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("auto-sharding failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `recsim shard <setup> --rows` — per-row hot/cold sharding over the
/// HBM / host DDR / SCM hierarchy: split every table into row ranges from
/// the Zipf access CDF, print the plan and compare it against the
/// whole-table baseline at the same HBM budget. `--zipf` sets the lookup
/// skew, `--hbm-gib` the aggregate HBM byte budget for hot slices,
/// `--ddr-gib` caps the warm host-DDR tier (default: the host's physical
/// capacity), and `--scm pmem|nvme` picks the cold tier device.
fn cmd_shard_rows(
    flags: &HashMap<String, String>,
    model: &ModelConfig,
    platform: &Platform,
    batch: u64,
) -> ExitCode {
    let scm = match flags.get("scm").map(String::as_str) {
        None | Some("pmem") => ScmDevice::optane_pmem(),
        Some("nvme") => ScmDevice::nvme_flash(),
        Some(other) => {
            eprintln!("unknown SCM device `{other}` (pmem, nvme)");
            return ExitCode::FAILURE;
        }
    };
    let platform = platform.with_scm(scm);
    let zipf = get(flags, "zipf", 1.1f64);
    let budget = Bytes::from_gib(get(flags, "hbm-gib", 8u64));
    let host_gib = platform.host().memory().capacity().as_u64() >> 30;
    let ddr = Bytes::from_gib(get(flags, "ddr-gib", host_gib));
    let row = match RowShardSolver::default()
        .solve_with_caps(model, &platform, batch, zipf, budget, ddr)
    {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("per-row sharding failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", row.describe());
    match per_table_plan_with_caps(model, &platform, batch, zipf, budget, ddr) {
        Ok(table) => {
            let row_ms = row.cost().as_secs() * 1e3;
            let table_ms = table.cost().as_secs() * 1e3;
            println!(
                "per-table baseline at the same {budget} HBM budget: {table_ms:.3} ms — \
                 per-row plan is {:+.1}%",
                (row_ms / table_ms - 1.0) * 100.0
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("per-table baseline failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `recsim faults <setup>` — price a fault environment and report each
/// recovery policy's goodput. Setups: the GPU platforms (`bb`, `bb16`) and
/// `scaleout` (multi-node sharded GPU memory). The schedule is a pure
/// function of `(seed, mtbf, horizon)`, so output is byte-identical at any
/// thread count.
fn cmd_faults(args: &[String]) -> ExitCode {
    let (flags, positional) = parse_flags(args);
    let setup = positional.first().map_or("bb", String::as_str);
    let model = match flags.get("model").map(String::as_str) {
        Some("m1") => production_model(ProductionModelId::M1),
        Some("m2") => production_model(ProductionModelId::M2),
        Some("m3") => production_model(ProductionModelId::M3),
        Some(other) => {
            eprintln!("unknown model `{other}` (m1, m2, m3)");
            return ExitCode::FAILURE;
        }
        None => build_model(&flags),
    };
    let fault_cfg = FaultConfig {
        seed: get(&flags, "seed", 42u64),
        horizon_secs: get(&flags, "horizon", 86_400.0f64),
        ..FaultConfig::default()
    }
    .with_device_mtbf(get(&flags, "mtbf", 21_600.0f64));

    let built = match setup {
        "bb" | "bb16" => {
            let platform = if setup == "bb16" {
                Platform::big_basin(Bytes::from_gib(16))
            } else {
                Platform::big_basin(Bytes::from_gib(32))
            };
            let batch = get(&flags, "batch", 1600u64);
            FaultSchedule::generate(&fault_cfg, platform.gpus().len())
                .map_err(FaultError::from)
                .and_then(|schedule| {
                    let ctx = FaultContext::for_gpu_training(
                        &model, &platform, batch, &fault_cfg, &schedule,
                    )?;
                    Ok((schedule, ctx))
                })
        }
        "scaleout" => {
            let nodes = get(&flags, "nodes", min_nodes(&model) + 2);
            let batch = get(&flags, "batch", 800u64);
            FaultSchedule::generate(&fault_cfg, nodes as usize * 8)
                .map_err(FaultError::from)
                .and_then(|schedule| {
                    let ctx =
                        FaultContext::for_scale_out(&model, nodes, batch, &fault_cfg, &schedule)?;
                    Ok((schedule, ctx))
                })
        }
        other => {
            eprintln!("unknown setup `{other}` (bb, bb16, scaleout)");
            return ExitCode::FAILURE;
        }
    };
    let (schedule, ctx) = match built {
        Ok(parts) => parts,
        Err(e) => {
            eprintln!("fault setup failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let failures = schedule.device_failures();
    println!("{}", ctx.setup());
    println!(
        "horizon {:.1} h, device MTBF {:.1} h: {} device failures, {} fault events",
        ctx.horizon_secs() / 3_600.0,
        fault_cfg.device_mtbf_secs / 3_600.0,
        failures,
        schedule.events().len()
    );
    println!(
        "healthy {:.0} ex/s, degraded {:.0} ex/s; checkpoint write {:.1} s, restart {:.1} s",
        ctx.baseline_samples_per_sec(),
        ctx.degraded_samples_per_sec(),
        ctx.checkpoint_write_secs(),
        ctx.restart_secs()
    );
    let interval = flags
        .get("interval")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| CheckpointRestart::optimal_interval(&ctx, fault_cfg.device_mtbf_secs));
    println!("checkpoint interval {interval:.0} s");

    let wanted = flags.get("policy").map_or("all", String::as_str);
    let names: Vec<&str> = if wanted == "all" {
        POLICY_NAMES.to_vec()
    } else if POLICY_NAMES.contains(&wanted) {
        vec![wanted]
    } else {
        eprintln!("unknown policy `{wanted}` (checkpoint, elastic, fail-stop, all)");
        return ExitCode::FAILURE;
    };
    for name in names {
        let Some(policy) = policy_by_name(name, interval) else {
            continue;
        };
        let g = policy.goodput(&ctx, failures);
        println!(
            "  {:<10} {:>8.0} ex/s goodput  ({:.1}% useful, {:.0} s overhead)",
            g.policy,
            g.goodput_samples_per_sec,
            g.useful_fraction * 100.0,
            g.overhead_secs
        );
    }
    ExitCode::SUCCESS
}

/// `recsim trace <setup>` — export one iteration's execution timeline and
/// its critical-path attribution. Setups: the GPU platforms (`bb`, `bb16`,
/// `zion`), `cpu` (single-trainer fleet) and `scaleout` (multi-node sharded
/// GPU memory). Formats: `chrome` (Perfetto-loadable JSON), `text`
/// (per-resource timeline), `summary` (category/attribution/slack tables).
fn cmd_trace(args: &[String]) -> ExitCode {
    const TOP_K: usize = 5;
    let (flags, positional) = parse_flags(args);
    let model = build_model(&flags);
    let batch = get(&flags, "batch", 1600u64);
    let setup = positional.first().map_or("bb", String::as_str);

    let (trace, cp) = match setup {
        "cpu" => {
            match CpuTrainingSim::new(&model, CpuClusterSetup::single_trainer(batch.min(800))) {
                Ok(sim) => (sim.trace(), sim.critical_path(TOP_K)),
                Err(e) => {
                    eprintln!("invalid CPU setup: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "scaleout" => {
            let nodes = get(&flags, "nodes", min_nodes(&model).max(2));
            match ScaleOutSim::new(&model, nodes, batch) {
                Ok(sim) => (sim.trace(), sim.critical_path(TOP_K)),
                Err(e) => {
                    eprintln!("scale-out error: {e} (min nodes = {})", min_nodes(&model));
                    return ExitCode::FAILURE;
                }
            }
        }
        name @ ("bb" | "bb16" | "zion") => {
            let platform = match name {
                "bb" => Platform::big_basin(Bytes::from_gib(32)),
                "bb16" => Platform::big_basin(Bytes::from_gib(16)),
                _ => Platform::zion_prototype(),
            };
            let Some(placement) = parse_placement(&flags) else {
                return ExitCode::FAILURE;
            };
            match GpuTrainingSim::new(&model, &platform, placement, batch) {
                Ok(sim) => (sim.trace(), sim.critical_path(TOP_K)),
                Err(e) => {
                    eprintln!("cannot trace this setup: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        other => {
            eprintln!("unknown setup `{other}` (bb, bb16, zion, cpu, scaleout)");
            return ExitCode::FAILURE;
        }
    };

    let rendered = match flags.get("format").map_or("chrome", String::as_str) {
        "chrome" => chrome_trace(&trace),
        "text" => recsim::trace::text_timeline(&trace),
        "summary" => format!(
            "busy time by category:\n{}\ncritical-path attribution ({}):\n{}\ntop slack:\n{}",
            recsim::trace::category_summary(&trace),
            setup,
            attribution_table(&cp),
            recsim::trace::slack_table(&cp),
        ),
        other => {
            eprintln!("unknown format `{other}` (chrome, text, summary)");
            return ExitCode::FAILURE;
        }
    };
    match flags.get("out") {
        Some(path) => match std::fs::write(path, rendered) {
            Ok(()) => {
                println!("trace written to {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                ExitCode::FAILURE
            }
        },
        None => {
            print!("{rendered}");
            ExitCode::SUCCESS
        }
    }
}

/// `recsim prof <driver>` — run one experiment driver with the hot-path
/// profiler armed (`recsim-prof` scopes on every model kernel and train
/// phase), then report per-op time/FLOP/byte shares against the host
/// roofline plus the sim-vs-measured calibration join (DESIGN.md §12).
/// Formats: `summary` (text tables), `chrome` (Perfetto-loadable spans of
/// the retained samples), `json` (the full [`ProfileReport`]).
fn cmd_prof(args: &[String]) -> ExitCode {
    let (flags, positional) = parse_flags(args);
    let Some(id) = positional.first() else {
        eprintln!(
            "usage: recsim prof <driver> [--quick] [--format summary|chrome|json] [--out FILE]"
        );
        return ExitCode::FAILURE;
    };
    let effort = if flags.contains_key("quick") {
        Effort::Quick
    } else {
        Effort::Full
    };
    let report = match profile_driver(id, effort) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = match flags.get("format").map_or("summary", String::as_str) {
        "summary" => report.summary(),
        "chrome" => report.chrome(),
        "json" => match report.json() {
            Ok(json) => json + "\n",
            Err(e) => {
                eprintln!("cannot serialize profile: {e}");
                return ExitCode::FAILURE;
            }
        },
        other => {
            eprintln!("unknown format `{other}` (summary, chrome, json)");
            return ExitCode::FAILURE;
        }
    };
    match flags.get("out") {
        Some(path) => match std::fs::write(path, rendered) {
            Ok(()) => {
                println!("profile written to {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("could not write {path}: {e}");
                ExitCode::FAILURE
            }
        },
        None => {
            print!("{rendered}");
            ExitCode::SUCCESS
        }
    }
}

/// Prints a [`SimReport`]'s critical-path attribution (the `--attribute`
/// flag): how the steady-state iteration time splits across categories.
fn print_attribution(report: &SimReport) {
    if report.attribution().is_empty() {
        println!("attribution:    (none recorded)");
        return;
    }
    let total = report.iteration_time().as_secs();
    println!("attribution (critical path):");
    for (label, d) in report.attribution() {
        let share = if total > 0.0 {
            d.as_secs() / total * 100.0
        } else {
            0.0
        };
        println!("  {label:<18} {d} ({share:.1}%)");
    }
}

/// `recsim verify` — the semantic half of the verification layer: runs every
/// built-in platform, production model and the default cost knobs through
/// [`Validate`] and prints the structured findings. The source-lint half
/// lives in the standalone driver (`cargo run -p recsim-verify -- lint`).
/// With `--detsan <id|all>` it instead runs the determinism sanitizer
/// (DESIGN.md §11): each selected driver at 1 worker vs N workers with the
/// per-stage digest recorder armed, reporting the first divergent stage and
/// sweep point.
fn cmd_verify(args: &[String]) -> ExitCode {
    let (flags, positional) = parse_flags(args);
    if !positional.is_empty() {
        eprintln!("usage: recsim verify [--detsan <id|all> [--quick] [--threads N]]");
        return ExitCode::FAILURE;
    }
    if let Some(target) = flags.get("detsan") {
        return cmd_verify_detsan(target, &flags);
    }
    let mut findings: Vec<(String, Diagnostic)> = Vec::new();
    let mut checked = 0usize;
    let mut check = |subject: String, diags: Vec<Diagnostic>| {
        checked += 1;
        findings.extend(diags.into_iter().map(|d| (subject.clone(), d)));
    };

    for (name, platform) in [
        (
            "platform bb (32 GiB)",
            Platform::big_basin(Bytes::from_gib(32)),
        ),
        ("platform bb16", Platform::big_basin(Bytes::from_gib(16))),
        ("platform zion", Platform::zion_prototype()),
        ("platform cpu", Platform::dual_socket_cpu()),
    ] {
        check(name.to_string(), platform.validate());
    }
    for id in ProductionModelId::ALL {
        let m = production_model(id);
        check(format!("model {}", id.name()), m.validate());
        // The Table III placement for this model must also validate.
        let setup = recsim::core::setups::ProductionSetup::for_model(id);
        if let Ok(p) = Placement::plan(
            &m,
            &Platform::big_basin(Bytes::from_gib(32)),
            setup.gpu_placement,
            recsim::placement::plan::ADAGRAD_STATE_MULTIPLIER,
        ) {
            check(format!("placement {} on bb", id.name()), p.validate());
        }
    }
    check(
        "cost knobs (default)".to_string(),
        CostKnobs::default().validate(),
    );

    for (subject, d) in &findings {
        println!("{subject}: {d}");
    }
    let errors = findings
        .iter()
        .filter(|(_, d)| d.severity() == Severity::Error)
        .count();
    println!(
        "verified {checked} subject(s): {} finding(s), {errors} error(s)",
        findings.len()
    );
    println!("(source lints: cargo run -p recsim-verify -- lint; codes: -- codes)");
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `recsim verify --detsan <id|all>` — the runtime half of the determinism
/// sanitizer. Runs each selected driver serially and at N workers with the
/// `recsim-detsan` recorder armed, then compares the per-stage digest
/// streams; a mismatch names the first divergent stage and sweep point.
/// The deliberately broken `detsan_demo` driver is selectable by id but
/// excluded from `all`. With `RECSIM_RESULTS_DIR=<dir>` the serial and
/// parallel artifacts are persisted to `<dir>-t1/` and `<dir>-tN/` so CI
/// can byte-diff them as a backstop.
fn cmd_verify_detsan(target: &str, flags: &HashMap<String, String>) -> ExitCode {
    let effort = if flags.contains_key("quick") {
        Effort::Quick
    } else {
        Effort::Full
    };
    let threads = match flags.get("threads") {
        Some(n) => match n.parse::<usize>() {
            Ok(n) if n >= 2 => n,
            _ => {
                eprintln!("--threads expects an integer >= 2, got `{n}`");
                return ExitCode::FAILURE;
            }
        },
        None => recsim::pool::thread_count().max(2),
    };
    // A bare `--detsan` parses as the value "true": sweep everything.
    let target = if target == "true" { "all" } else { target };
    let registry = experiments::registry();
    let selected: Vec<(&str, experiments::Driver)> = if target == "all" {
        registry
    } else if target == "detsan_demo" {
        vec![(
            "detsan_demo",
            experiments::detsan_demo::run as experiments::Driver,
        )]
    } else if let Some(pair) = registry.into_iter().find(|(id, _)| *id == target) {
        vec![pair]
    } else {
        eprintln!("unknown driver `{target}`; use a registry id, `detsan_demo`, or `all`");
        return ExitCode::FAILURE;
    };

    let results_dir = std::env::var_os("RECSIM_RESULTS_DIR")
        .map(|d| std::path::PathBuf::from(d).to_string_lossy().into_owned());
    let mut dirty = 0usize;
    for (id, driver) in &selected {
        let cmp = recsim::core::detsan_check::compare_driver(id, *driver, effort, threads);
        println!("{}", cmp.describe());
        if let Some(base) = &results_dir {
            for (suffix, json) in [
                ("t1".to_string(), &cmp.json_serial),
                (format!("t{threads}"), &cmp.json_parallel),
            ] {
                let dir = std::path::PathBuf::from(format!("{base}-{suffix}"));
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    eprintln!("cannot create {}: {e}", dir.display());
                    return ExitCode::FAILURE;
                }
                let path = dir.join(format!("{id}.json"));
                if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if !cmp.is_clean() {
            dirty += 1;
        }
    }
    if let Some(base) = &results_dir {
        println!(
            "(artifacts written to {base}-t1 and {base}-t{threads}, {} driver(s) each)",
            selected.len()
        );
    }
    println!(
        "detsan: {} driver(s) compared at 1 vs {threads} thread(s), {dirty} divergent",
        selected.len()
    );
    if dirty > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_report(report: &SimReport) {
    println!("setup:          {}", report.setup());
    println!("iteration time: {}", report.iteration_time());
    println!("throughput:     {:.0} examples/s", report.throughput());
    println!("power:          {}", report.power());
    println!("efficiency:     {:.1} examples/J", report.perf_per_watt());
    if let Some((name, util)) = report.bottleneck() {
        println!("bottleneck:     {name} at {:.0}% utilization", util * 100.0);
    }
    println!("utilization:");
    let mut utils: Vec<_> = report.utilizations().to_vec();
    utils.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (name, u) in utils.into_iter().take(12) {
        if u > 0.005 {
            println!("  {name:<18} {:>5.1}%", u * 100.0);
        }
    }
}

fn cmd_train(args: &[String]) -> ExitCode {
    let (mut flags, _) = parse_flags(args);
    flags.entry("dense".into()).or_insert_with(|| "16".into());
    flags.entry("sparse".into()).or_insert_with(|| "4".into());
    flags.entry("hash".into()).or_insert_with(|| "2000".into());
    flags.entry("mlp".into()).or_insert_with(|| "32x2".into());
    let model = build_model(&flags);
    let config = TrainerConfig {
        batch_size: get(&flags, "batch", 200usize),
        train_examples: get(&flags, "examples", 40_000usize),
        eval_examples: 8_000,
        learning_rate: get(&flags, "lr", 0.04f32),
        warmup_steps: 20,
        adagrad: true,
        seed: get(&flags, "seed", 31u64),
    };
    println!(
        "training {} for {} examples at batch {} (lr {})...",
        model.name(),
        config.train_examples,
        config.batch_size,
        config.learning_rate
    );
    let run = TrainRun::new(&model, config).execute();
    let hist = run.loss_history();
    println!("steps:           {}", hist.len());
    println!(
        "first-step loss: {:.4}",
        hist.first().copied().unwrap_or(0.0)
    );
    println!(
        "last-step loss:  {:.4}",
        hist.last().copied().unwrap_or(0.0)
    );
    println!(
        "held-out NE:     {:.4}  (1.0 = base-rate prediction)",
        run.final_ne()
    );
    ExitCode::SUCCESS
}

/// `recsim serve <setup>` — run the online inference serving tier: price
/// the scenario in virtual time (micro-batching, embedding cache, SLO
/// tails), then really train a DLRM and push the exact priced schedule
/// through its forward path. Setups: `steady` (stationary Poisson),
/// `spike` (transient rate burst mid-run), `push` (mid-run model swap: a
/// second model trained at `seed + 1` takes over behind a weight-transfer
/// stall and a cold cache).
fn cmd_serve(args: &[String]) -> ExitCode {
    let (mut flags, positional) = parse_flags(args);
    let setup = positional.first().map_or("steady", String::as_str);
    flags.entry("dense".into()).or_insert_with(|| "16".into());
    flags.entry("sparse".into()).or_insert_with(|| "4".into());
    flags.entry("hash".into()).or_insert_with(|| "2000".into());
    flags.entry("mlp".into()).or_insert_with(|| "32x2".into());
    let model = build_model(&flags);

    let seed = get(&flags, "seed", 7u64);
    let duration = get(&flags, "duration", 2.0f64);
    let rps = get(&flags, "rps", 4_000.0f64);
    let mut workload = WorkloadConfig::steady(seed, rps, duration);
    let mut push = None;
    match setup {
        "steady" => {}
        "spike" => {
            workload.spike = Some(Spike {
                start_secs: duration * 0.4,
                duration_secs: duration * 0.2,
                multiplier: get(&flags, "multiplier", 6.0f64),
            });
        }
        "push" => {
            push = Some(ModelPush {
                at_secs: duration * 0.5,
                stall_us: get(&flags, "stall-us", 20_000u64),
            });
        }
        other => {
            eprintln!("unknown setup `{other}` (steady, spike, push)");
            return ExitCode::FAILURE;
        }
    }
    let policy_name = flags.get("policy").map_or("lru", String::as_str);
    let Some(policy) = CachePolicy::from_name(policy_name) else {
        eprintln!("unknown cache policy `{policy_name}` (lru, lfu, static-hot)");
        return ExitCode::FAILURE;
    };
    let cfg = ServeConfig {
        workload,
        policy,
        capacity_rows: get(&flags, "capacity", 1_024usize),
        batching: BatchPolicy::new(
            get(&flags, "max-batch", 16usize),
            get(&flags, "max-delay-us", 2_000u64),
        ),
        slo_ms: get(&flags, "slo-ms", 5.0f64),
        push,
    };

    // Latency terms: the measured kernel baseline when the artifact is in
    // the tree, the closed-form hardware model otherwise.
    let bench = recsim::verify::lint::workspace_root()
        .map(|root| root.join("BENCH_kernels.json"))
        .and_then(|path| std::fs::read_to_string(path).ok());
    let (latency, source) = match bench
        .as_deref()
        .and_then(|json| LatencyModel::from_kernel_bench(json, &model))
    {
        Some(calibrated) => (calibrated, "measured BENCH_kernels.json"),
        None => (LatencyModel::closed_form(&model), "closed-form hw model"),
    };

    println!(
        "serving {} under `{setup}` load: {rps:.0} rps x {duration:.1} s, {} cache of {} \
         rows, batch <= {} within {} us, SLO {} ms (latency: {source})",
        model.name(),
        policy.name(),
        cfg.capacity_rows,
        cfg.batching.max_batch,
        cfg.batching.max_delay_us,
        cfg.slo_ms,
    );
    let report = simulate(&model, &cfg, &latency);
    print_serve_report(&report);

    // The real pass: train, then score the exact priced schedule.
    let train_seed = get(&flags, "train-seed", 17u64);
    let trainer = TrainerConfig {
        seed: train_seed,
        ..TrainerConfig::quick_test()
    };
    println!("\ntraining {} for the execution pass...", model.name());
    let run = TrainRun::new(&model, trainer).execute();
    println!(
        "  held-out NE {:.4} after {} steps",
        run.final_ne(),
        run.loss_history().len()
    );
    let (requests, batches) = recsim::serve::schedule(&model, &cfg, &latency);
    let build_cache = |requests: &[recsim::serve::Request]| match policy {
        CachePolicy::StaticHot => {
            let flat: Vec<_> = requests
                .iter()
                .flat_map(recsim::serve::Request::row_keys)
                .collect();
            EmbeddingCache::static_hot(&recsim::serve::optimal_static_set(&flat, cfg.capacity_rows))
        }
        p => EmbeddingCache::new(p, cfg.capacity_rows),
    };
    let mut cache = build_cache(&requests);
    let push_split = cfg.push.map(|p| {
        let at = (p.at_secs * 1e6) as u64;
        batches.partition_point(|b| requests[b.start].arrival_us < at)
    });
    match push_split {
        Some(split) if split < batches.len() => {
            let pre = execute_schedule(
                run.model(),
                &model,
                &requests,
                &batches[..split],
                &mut cache,
                seed,
            );
            print_execution("pre-push ", &pre);
            println!(
                "  model push: training the replacement at seed {}...",
                train_seed + 1
            );
            let fresh = TrainRun::new(
                &model,
                TrainerConfig {
                    seed: train_seed + 1,
                    ..trainer
                },
            )
            .execute();
            let mut cold = build_cache(&requests);
            let post = execute_schedule(
                fresh.model(),
                &model,
                &requests,
                &batches[split..],
                &mut cold,
                seed,
            );
            print_execution("post-push", &post);
        }
        _ => print_execution(
            "executed ",
            &execute_schedule(run.model(), &model, &requests, &batches, &mut cache, seed),
        ),
    }
    ExitCode::SUCCESS
}

/// Prints a [`ServeReport`]'s headline numbers and attribution.
fn print_serve_report(r: &ServeReport) {
    println!(
        "requests:       {} over {:.2} s ({:.0} rps offered)",
        r.requests, r.duration_secs, r.offered_rps
    );
    println!(
        "micro-batches:  {} (mean batch {:.1})",
        r.batches, r.mean_batch
    );
    println!(
        "latency:        p50 {:.3} ms, p99 {:.3} ms, p999 {:.3} ms",
        r.p50_ms, r.p99_ms, r.p999_ms
    );
    println!(
        "cache:          {:.1}% hits, {} evictions",
        r.hit_rate * 100.0,
        r.evictions
    );
    println!(
        "slo:            {:.1}% within {} ms -> goodput {:.0} rps",
        r.slo_attainment * 100.0,
        r.slo_ms,
        r.goodput_rps
    );
    if !r.attribution.is_empty() {
        println!("served time:");
        for (label, share) in &r.attribution {
            println!("  {label:<18} {:>5.1}%", share * 100.0);
        }
    }
    if let Some(p) = &r.push {
        println!(
            "model push:     p99 {:.3} -> {:.3} ms, hit rate {:.1}% -> {:.1}% \
             ({:.0} ms stall)",
            p.pre_p99_ms,
            p.post_p99_ms,
            p.pre_hit_rate * 100.0,
            p.post_hit_rate * 100.0,
            p.stall_ms
        );
    }
}

/// Prints one real-execution pass.
fn print_execution(tag: &str, s: &recsim::serve::ExecutionSummary) {
    let probes = (s.hits + s.misses).max(1);
    println!(
        "  {tag} {} examples in {} batches: mean click score {:.4}, cache \
         {:.1}% hits, score digest {:#018x}",
        s.examples,
        s.batches,
        s.mean_score,
        100.0 * s.hits as f64 / probes as f64,
        s.score_digest
    );
}

fn cmd_models() -> ExitCode {
    for id in ProductionModelId::ALL {
        let m = production_model(id);
        println!(
            "{:<8} {:>4} sparse x {:>4} dense, {:>7.1} GiB embeddings, {:>5.1} lookups/feature, \
             bottom {:?}, top {:?}",
            id.name(),
            m.num_sparse(),
            m.num_dense(),
            m.total_embedding_bytes() as f64 / (1u64 << 30) as f64,
            m.mean_lookups_per_feature(),
            m.bottom_mlp(),
            m.top_mlp(),
        );
    }
    ExitCode::SUCCESS
}
