//! Reliability drill: checkpointed training survives a crash, and a
//! straggler GPU is visible in the simulator before it costs a day.
//!
//! Recommendation training runs for days over high data volumes (the paper:
//! a hyper-parameter sweep alone "took around a week"); its related work
//! stresses failure-tolerant training. This example walks both halves of
//! the reliability story:
//!
//! 1. train → checkpoint → crash → restore → resume, verifying the resumed
//!    model is *bit-identical* to an uninterrupted run, and
//! 2. inject a degraded GPU into the simulated platform and quantify the
//!    fleet-wide throughput loss a single straggler causes.
//!
//! Run with: `cargo run --release --example reliability_drill`

use recsim::model::optim::Optimizer;
use recsim::prelude::*;
use recsim::train::checkpoint::Checkpoint;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: crash-and-resume -----------------------------------
    let config = ModelConfig::test_suite(16, 4, 2_000, &[32, 16]);
    let mut generator = CtrGenerator::new(&config, 3);
    let mut model = DlrmModel::new(&config, 1);
    let mut opt = Optimizer::adagrad(0.05);
    let (total_steps, crash_at, batch) = (120usize, 60usize, 64usize);

    let mut checkpoint = None;
    for step in 0..total_steps {
        let data = generator.next_batch(batch);
        model.train_step(&data, &mut opt);
        if step + 1 == crash_at {
            checkpoint = Some(Checkpoint::capture(&model, step + 1, (step + 1) * batch));
        }
    }
    let finished = model;

    // "Crash": a new process restores the snapshot and replays the rest of
    // the stream.
    let ckpt = checkpoint.expect("captured");
    println!(
        "checkpoint: step {}, {} examples seen, {} payload",
        ckpt.step,
        ckpt.examples_seen,
        Bytes::new(ckpt.payload_bytes() as u64),
    );
    let mut resumed = ckpt.restore()?;
    let mut replay = CtrGenerator::new(&config, 3);
    for _ in 0..crash_at {
        let _ = replay.next_batch(batch);
    }
    let mut opt2 = Optimizer::adagrad(0.05);
    for _ in crash_at..total_steps {
        let data = replay.next_batch(batch);
        resumed.train_step(&data, &mut opt2);
    }
    println!(
        "resume check: resumed model identical to uninterrupted run? {}",
        if resumed == finished { "yes" } else { "NO" },
    );
    assert_eq!(resumed, finished, "resume must be exact");

    // ---- Part 2: straggler detection ---------------------------------
    let sim_model = ModelConfig::test_suite(256, 16, 100_000, &[512, 512, 512]);
    let healthy = Platform::big_basin(Bytes::from_gib(32));
    let strategy = PlacementStrategy::GpuMemory(PartitionScheme::TableWise);
    let baseline = GpuTrainingSim::new(&sim_model, &healthy, strategy, 1600)?.run();
    println!("\nstraggler sweep (one GPU derated, data-parallel fleet of 8):");
    println!("{:>10} {:>12} {:>8}", "GPU speed", "ex/s", "loss");
    for factor in [1.0, 0.8, 0.6, 0.4, 0.2] {
        let platform = if factor < 1.0 {
            healthy.with_straggler_gpu(5, factor)
        } else {
            healthy.clone()
        };
        let report = GpuTrainingSim::new(&sim_model, &platform, strategy, 1600)?.run();
        println!(
            "{:>9.0}% {:>12.0} {:>7.0}%",
            factor * 100.0,
            report.throughput(),
            (1.0 - report.throughput() / baseline.throughput()) * 100.0
        );
    }
    println!(
        "\nOne slow GPU paces the whole data-parallel iteration — catching it in \
         simulation is cheaper than discovering it after a day of training."
    );
    Ok(())
}
