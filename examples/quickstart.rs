//! Quickstart: build a recommendation model, estimate its training
//! throughput on each platform, and actually train a small one.
//!
//! Run with: `cargo run --release --example quickstart`

use recsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a recommendation model (Section III of the paper):
    //    256 dense features, 16 sparse features with 100k-row embedding
    //    tables, and 512^3 MLP stacks.
    let config = ModelConfig::test_suite(256, 16, 100_000, &[512, 512, 512]);
    println!(
        "model: {} dense x {} sparse, {} of embeddings, {:.1} MFLOP/example forward",
        config.num_dense(),
        config.num_sparse(),
        Bytes::new(config.total_embedding_bytes()),
        config.forward_flops_per_example() as f64 / 1e6,
    );

    // 2. Estimate training throughput on the paper's three platforms.
    let cpu = CpuTrainingSim::new(&config, CpuClusterSetup::single_trainer(200))?.run();
    println!(
        "\ndual-socket CPU (1 trainer + 2 PS):  {:>9.0} ex/s  ({:.1} ex/J)",
        cpu.throughput(),
        cpu.perf_per_watt()
    );
    for (platform, batch) in [
        (Platform::big_basin(Bytes::from_gib(32)), 1600u64),
        (Platform::zion_prototype(), 1600),
    ] {
        let report = GpuTrainingSim::new(
            &config,
            &platform,
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            batch,
        )?
        .run();
        let (bottleneck, util) = report.bottleneck().unwrap_or(("-", 0.0));
        let util_pct = util * 100.0;
        println!(
            "{:<36} {:>9.0} ex/s  ({:.1} ex/J, bottleneck {bottleneck} at {util_pct:.0}%)",
            format!("{} (batch {batch}):", platform.name()),
            report.throughput(),
            report.perf_per_watt(),
        );
    }

    // 3. Train a laptop-scale model for real and report normalized entropy.
    let small = ModelConfig::test_suite(16, 4, 2_000, &[32, 16]);
    let run = TrainRun::new(&small, TrainerConfig::quick_test()).execute();
    println!(
        "\nreal training on synthetic CTR data: NE {:.4} after {} steps (NE < 1 beats \
         base-rate prediction)",
        run.final_ne(),
        run.loss_history().len()
    );
    Ok(())
}
