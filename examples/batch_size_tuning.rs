//! Batch-size tuning, the way the paper's Section VI does it: throughput
//! says "bigger is better", model quality says otherwise, and AutoML
//! recovers most of the loss.
//!
//! For a candidate model this example reports, per batch size:
//!   * simulated GPU training throughput (Big Basin),
//!   * real held-out NE after training with the manual linear-scaling LR,
//!   * real held-out NE after an automated re-tune,
//!
//! and then recommends the batch a practitioner should pick.
//!
//! Run with: `cargo run --release --example batch_size_tuning`

use recsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Throughput is simulated on the full-size model; quality is measured
    // by really training a scaled-down version of it (same architecture
    // family) on planted-teacher CTR data.
    let full = ModelConfig::test_suite(256, 16, 1_000_000, &[512, 512, 512]);
    let small = ModelConfig::test_suite(16, 4, 2_000, &[32, 16]);
    let platform = Platform::big_basin(Bytes::from_gib(32));

    let baseline = TrainerConfig {
        batch_size: 200,
        train_examples: 60_000,
        eval_examples: 10_000,
        learning_rate: 0.04,
        warmup_steps: 20,
        adagrad: true,
        seed: 31,
    };
    let study = BatchScalingStudy::new(&small, baseline);
    let baseline_ne = study.baseline_ne();

    println!(
        "{:>7} {:>12} {:>10} {:>12} {:>12}",
        "batch", "sim ex/s", "manual NE", "gap", "retuned NE"
    );
    let mut best: Option<(usize, f64)> = None;
    for &batch in &[200usize, 400, 800, 1600, 3200] {
        let throughput = GpuTrainingSim::new(
            &full,
            &platform,
            PlacementStrategy::GpuMemory(PartitionScheme::TableWise),
            batch as u64,
        )?
        .run()
        .throughput();
        let manual = study.sweep(&[batch])[0];
        let tuned = AutoTuner::new(
            &small,
            baseline
                .with_batch_size(batch)
                .with_learning_rate(manual.learning_rate),
            0xBA7C,
        )
        .with_lr_range(1e-3, 0.8)
        .tune(8);
        println!(
            "{batch:>7} {throughput:>12.0} {:>10.4} {:>11.2}% {:>12.4}",
            manual.ne, manual.ne_gap_percent, tuned.ne
        );
        // Practitioner rule: the largest batch whose re-tuned NE stays
        // within 0.2% of the small-batch baseline.
        if (tuned.ne - baseline_ne) / baseline_ne < 0.002 {
            best = Some((batch, throughput));
        }
    }
    match best {
        Some((batch, throughput)) => println!(
            "\nrecommendation: batch {batch} — {throughput:.0} ex/s with re-tuned quality \
             within 0.2% of the baseline"
        ),
        None => println!("\nrecommendation: stay at the baseline batch; quality cannot be held"),
    }
    Ok(())
}
