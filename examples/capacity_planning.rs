//! Capacity planning: where should a growing model's embedding tables live?
//!
//! This walks the paper's central operational question. A ranking model's
//! feature team keeps adding hash capacity; at each size we ask every
//! platform/placement combination for its throughput and power efficiency
//! and print the winner — reproducing the M1 → M3 progression (GPU HBM,
//! then hybrid spill, then Zion system memory).
//!
//! Run with: `cargo run --release --example capacity_planning`

use recsim::prelude::*;

fn main() {
    let base = ModelConfig::test_suite(512, 32, 1_000_000, &[512, 512, 512]);
    let big_basin = Platform::big_basin(Bytes::from_gib(32));
    let zion = Platform::zion_prototype();
    let batch = 1600;

    println!(
        "{:<10} {:<12} {:<44} {:>12} {:>9}",
        "hash scale", "EMB size", "best setup", "ex/s", "ex/J"
    );
    for scale in [1u64, 4, 16, 64, 128, 256] {
        let model = base.with_hash_scale(scale);
        let emb = Bytes::new(model.total_embedding_bytes());

        // Candidates: every placement on both GPU platforms, plus the
        // distributed CPU baseline sized to hold the tables.
        let mut candidates: Vec<(String, f64, f64)> = Vec::new();
        for (platform, name) in [(&big_basin, "Big Basin"), (&zion, "Zion")] {
            for strategy in PlacementStrategy::figure8_lineup() {
                if let Ok(sim) = GpuTrainingSim::new(&model, platform, strategy, batch) {
                    let r = sim.run();
                    candidates.push((
                        format!("{name} / {strategy}"),
                        r.throughput(),
                        r.perf_per_watt(),
                    ));
                }
            }
        }
        let sparse_ps =
            (model.total_embedding_bytes() * 2 / Bytes::from_gib(200).as_u64()).max(1) as u32;
        let cpu = CpuTrainingSim::new(
            &model,
            CpuClusterSetup {
                trainers: 8,
                dense_ps: 2,
                sparse_ps,
                hogwild_threads: 2,
                batch_per_thread: 200,
                sync_period: 16,
            },
        )
        .expect("valid setup")
        .run();
        candidates.push((
            format!("CPU cluster (8 trainers, {sparse_ps} sparse PS)"),
            cpu.throughput(),
            cpu.perf_per_watt(),
        ));

        let best = candidates
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("at least the CPU candidate");
        println!(
            "{:<10} {:<12} {:<44} {:>12.0} {:>9.1}",
            format!("x{scale}"),
            emb.to_string(),
            best.0,
            best.1,
            best.2
        );
    }
    println!(
        "\nThe winning setup migrates exactly as the paper describes: HBM placement while \
         tables fit, then spill strategies, then large-system-memory platforms."
    );
}
