//! Fleet characterization: regenerate the paper's datacenter-level views
//! (workload landscape, utilization distributions, server-count histograms)
//! in one report.
//!
//! Run with: `cargo run --release --example fleet_characterization`

use recsim::prelude::*;

fn main() {
    for driver in [
        experiments::fig02::run as fn(Effort) -> ExperimentOutput,
        experiments::fig05::run,
        experiments::fig09::run,
    ] {
        let out = driver(Effort::Full);
        print!("{}", out.render());
        if !out.all_claims_hold() {
            eprintln!("WARNING: {} has failing claims", out.id);
        }
        println!();
    }
}
